#include "ds/linux_rwlock.h"

#include "inject/inject.h"

namespace cds::ds {

using mc::MemoryOrder;
using spec::Ctx;

namespace {
const inject::SiteId kReadLockSub = inject::register_site(
    "linux-rwlock", "read_lock: fetch_sub", MemoryOrder::acquire,
    inject::OpKind::kRmw);
const inject::SiteId kReadSpinLoad = inject::register_site(
    "linux-rwlock", "read_lock: spin load", MemoryOrder::acquire,
    inject::OpKind::kLoad);
const inject::SiteId kReadUnlockAdd = inject::register_site(
    "linux-rwlock", "read_unlock: fetch_add", MemoryOrder::release,
    inject::OpKind::kRmw);
const inject::SiteId kWriteLockSub = inject::register_site(
    "linux-rwlock", "write_lock: fetch_sub", MemoryOrder::acquire,
    inject::OpKind::kRmw);
const inject::SiteId kWriteSpinLoad = inject::register_site(
    "linux-rwlock", "write_lock: spin load", MemoryOrder::acquire,
    inject::OpKind::kLoad);
const inject::SiteId kWriteUnlockAdd = inject::register_site(
    "linux-rwlock", "write_unlock: fetch_add", MemoryOrder::release,
    inject::OpKind::kRmw);
const inject::SiteId kReadTrySub = inject::register_site(
    "linux-rwlock", "read_trylock: fetch_sub", MemoryOrder::acquire,
    inject::OpKind::kRmw);
const inject::SiteId kWriteTrySub = inject::register_site(
    "linux-rwlock", "write_trylock: fetch_sub", MemoryOrder::acquire,
    inject::OpKind::kRmw);

void register_common(spec::Specification* sp) {
  sp->state<RwLockSpecState>();
  sp->method("read_lock")
      .pre([](Ctx& c) { return !c.st<RwLockSpecState>().writer; })
      .side_effect([](Ctx& c) { ++c.st<RwLockSpecState>().readers; });
  sp->method("read_unlock")
      .pre([](Ctx& c) { return c.st<RwLockSpecState>().readers > 0; })
      .side_effect([](Ctx& c) { --c.st<RwLockSpecState>().readers; });
  sp->method("write_lock")
      .pre([](Ctx& c) {
        const auto& st = c.st<RwLockSpecState>();
        return !st.writer && st.readers == 0;
      })
      .side_effect([](Ctx& c) { c.st<RwLockSpecState>().writer = true; });
  sp->method("write_unlock")
      .pre([](Ctx& c) { return c.st<RwLockSpecState>().writer; })
      .side_effect([](Ctx& c) { c.st<RwLockSpecState>().writer = false; });
}
}  // namespace

const spec::Specification& LinuxRwLock::specification() {
  static spec::Specification* s = [] {
    auto* sp = new spec::Specification("LinuxRwLock");
    register_common(sp);
    // Refined trylock specs: spurious failure allowed (the transient bias
    // subtraction of a racing trylock can make another trylock fail).
    sp->method("read_trylock").side_effect([](Ctx& c) {
      auto& st = c.st<RwLockSpecState>();
      c.s_ret = st.writer ? 0 : 1;
      if (c.c_ret() == 1) ++st.readers;
    }).post([](Ctx& c) { return c.c_ret() == 0 || c.s_ret == 1; });
    sp->method("write_trylock").side_effect([](Ctx& c) {
      auto& st = c.st<RwLockSpecState>();
      c.s_ret = (st.writer || st.readers > 0) ? 0 : 1;
      if (c.c_ret() == 1) st.writer = true;
    }).post([](Ctx& c) { return c.c_ret() == 0 || c.s_ret == 1; });
    return sp;
  }();
  return *s;
}

const spec::Specification& LinuxRwLock::strict_trylock_specification() {
  static spec::Specification* s = [] {
    auto* sp = new spec::Specification("LinuxRwLockStrict");
    register_common(sp);
    // First-attempt spec: trylock outcome must equal the sequential
    // outcome. Wrong for this implementation (see Section 6.1).
    sp->method("read_trylock").side_effect([](Ctx& c) {
      auto& st = c.st<RwLockSpecState>();
      c.s_ret = st.writer ? 0 : 1;
      if (c.c_ret() == 1) ++st.readers;
    }).post([](Ctx& c) { return c.c_ret() == c.s_ret; });
    sp->method("write_trylock").side_effect([](Ctx& c) {
      auto& st = c.st<RwLockSpecState>();
      c.s_ret = (st.writer || st.readers > 0) ? 0 : 1;
      if (c.c_ret() == 1) st.writer = true;
    }).post([](Ctx& c) { return c.c_ret() == c.s_ret; });
    return sp;
  }();
  return *s;
}

LinuxRwLock::LinuxRwLock(const spec::Specification& s)
    : lock_(kBias, "rwlock.lock"), obj_(s) {}

void LinuxRwLock::read_lock() {
  spec::Method m(obj_, "read_lock");
  for (;;) {
    int prior = lock_.fetch_sub(1, inject::order(kReadLockSub));
    m.op_clear_define();  // the successful subtraction orders the call
    if (prior > 0) return;
    // A writer holds (or is acquiring) the lock: undo and spin.
    lock_.fetch_add(1, MemoryOrder::relaxed);
    while (lock_.load(inject::order(kReadSpinLoad)) <= 0) mc::yield();
  }
}

void LinuxRwLock::read_unlock() {
  spec::Method m(obj_, "read_unlock");
  lock_.fetch_add(1, inject::order(kReadUnlockAdd));
  m.op_define();
}

void LinuxRwLock::write_lock() {
  spec::Method m(obj_, "write_lock");
  for (;;) {
    int prior = lock_.fetch_sub(kBias, inject::order(kWriteLockSub));
    m.op_clear_define();
    if (prior == kBias) return;
    lock_.fetch_add(kBias, MemoryOrder::relaxed);
    while (lock_.load(inject::order(kWriteSpinLoad)) != kBias) mc::yield();
  }
}

void LinuxRwLock::write_unlock() {
  spec::Method m(obj_, "write_unlock");
  lock_.fetch_add(kBias, inject::order(kWriteUnlockAdd));
  m.op_define();
}

int LinuxRwLock::read_trylock() {
  spec::Method m(obj_, "read_trylock");
  int prior = lock_.fetch_sub(1, inject::order(kReadTrySub));
  m.op_define();
  if (prior > 0) return static_cast<int>(m.ret(1));
  lock_.fetch_add(1, MemoryOrder::relaxed);  // transient side effect undone
  return static_cast<int>(m.ret(0));
}

int LinuxRwLock::write_trylock() {
  spec::Method m(obj_, "write_trylock");
  int prior = lock_.fetch_sub(kBias, inject::order(kWriteTrySub));
  m.op_define();
  if (prior == kBias) return static_cast<int>(m.ret(1));
  lock_.fetch_add(kBias, MemoryOrder::relaxed);
  return static_cast<int>(m.ret(0));
}

void rwlock_test_rw(mc::Exec& x) {
  auto* l = x.make<LinuxRwLock>();
  int t1 = x.spawn([l] {
    l->read_lock();
    l->read_unlock();
  });
  int t2 = x.spawn([l] {
    l->write_lock();
    l->write_unlock();
  });
  x.join(t1);
  x.join(t2);
}

void rwlock_test_2w(mc::Exec& x) {
  auto* l = x.make<LinuxRwLock>();
  auto body = [l] {
    l->write_lock();
    l->write_unlock();
  };
  int t1 = x.spawn(body);
  int t2 = x.spawn(body);
  x.join(t1);
  x.join(t2);
}

void rwlock_test_trylock(mc::Exec& x) {
  auto* l = x.make<LinuxRwLock>();
  int t1 = x.spawn([l] {
    if (l->write_trylock() == 1) l->write_unlock();
  });
  int t2 = x.spawn([l] {
    if (l->read_trylock() == 1) l->read_unlock();
  });
  x.join(t1);
  x.join(t2);
}

void rwlock_test_3t_mixed(mc::Exec& x) {
  auto* l = x.make<LinuxRwLock>();
  int t1 = x.spawn([l] {
    l->write_lock();
    l->write_unlock();
  });
  int t2 = x.spawn([l] {
    l->read_lock();
    l->read_unlock();
  });
  int t3 = x.spawn([l] {
    if (l->read_trylock() == 1) l->read_unlock();
  });
  x.join(t1);
  x.join(t2);
  x.join(t3);
}

void rwlock_test_racing_trylocks(mc::Exec& x) {
  auto* l = x.make<LinuxRwLock>();
  auto body = [l] {
    if (l->write_trylock() == 1) l->write_unlock();
  };
  int t1 = x.spawn(body);
  int t2 = x.spawn(body);
  x.join(t1);
  x.join(t2);
}

}  // namespace cds::ds
