#include "ds/suite.h"

#include "ds/blocking_queue.h"
#include "ds/chaselev_deque.h"
#include "ds/concurrent_hashmap.h"
#include "ds/lamport_queue.h"
#include "ds/linux_rwlock.h"
#include "ds/lockfree_hashtable.h"
#include "ds/mcs_lock.h"
#include "ds/mpmc_queue.h"
#include "ds/msqueue.h"
#include "ds/peterson_lock.h"
#include "ds/rcu.h"
#include "ds/register.h"
#include "ds/seqlock.h"
#include "ds/spsc_queue.h"
#include "ds/ticket_lock.h"
#include "ds/ttas_lock.h"
#include "harness/runner.h"

namespace cds::ds {

void register_all_benchmarks() {
  using harness::Benchmark;
  using harness::register_benchmark;

  // The ten rows of the paper's Figure 7 / Figure 8, in paper order.
  //
  // The Chase-Lev deque sets spec_requires_concurrency: its owner's take()
  // has a *claim* (the bottom decrement) and a *decision* (the top CAS)
  // that are separate events, so under all-seq_cst operations the ordering
  // points totally order takes and steals in ways that strip the
  // CONCURRENT justification the Figure-6-style spec relies on — the
  // paper's framework targets the release/acquire setting where those
  // calls stay concurrent (its own SC-counterpart remark concerns commit
  // points, not this spec). The rel/acq sweep in chaselev_test.cc covers
  // the deque.
  register_benchmark(Benchmark{
      "chase-lev-deque",
      "Chase-Lev Deque",
      &ChaseLevDeque::specification(),
      {chaselev_test_paper, chaselev_test_steal_race, chaselev_test_resize},
      /*spec_requires_concurrency=*/true});
  register_benchmark(Benchmark{"spsc-queue",
                               "SPSC Queue",
                               &SpscQueue::specification(),
                               {spsc_test_1p1c, spsc_test_burst}});
  register_benchmark(Benchmark{
      "rcu", "RCU", &Rcu::specification(),
      {rcu_test_1w1r, rcu_test_1w2r, rcu_test_2w}});
  register_benchmark(Benchmark{"lockfree-hashtable",
                               "Lockfree Hashtable",
                               &LockfreeHashtable::specification(),
                               {lfht_test_2t, lfht_test_same_key}});
  register_benchmark(Benchmark{"mcs-lock",
                               "MCS Lock",
                               &McsLock::specification(),
                               {mcs_lock_test_2t, mcs_lock_test_3t}});
  register_benchmark(Benchmark{
      "mpmc-queue",
      "MPMC Queue",
      &MpmcQueue::specification(),
      {mpmc_test_1p1c, mpmc_test_wrap, mpmc_test_2p1c, mpmc_test_2p2c}});
  register_benchmark(Benchmark{
      "ms-queue",
      "M&S Queue",
      &MSQueue::specification(),
      {msqueue_test_1p1c, msqueue_test_2p1c, msqueue_test_1p2c,
       msqueue_test_deq_empty}});
  register_benchmark(Benchmark{"linux-rwlock",
                               "Linux RW Lock",
                               &LinuxRwLock::specification(),
                               {rwlock_test_rw, rwlock_test_2w,
                                rwlock_test_trylock,
                                rwlock_test_racing_trylocks,
                                rwlock_test_3t_mixed}});
  register_benchmark(Benchmark{"seqlock",
                               "Seqlock",
                               &SeqLock::specification(),
                               {seqlock_test_1w1r, seqlock_test_2w}});
  register_benchmark(Benchmark{"ticket-lock",
                               "Ticket Lock",
                               &TicketLock::specification(),
                               {ticket_lock_test_2t, ticket_lock_test_3t}});

  // Expressiveness extras (Sections 2 and 6.1; not Figure 7/8 rows).
  register_benchmark(Benchmark{
      "blocking-queue",
      "Blocking Queue (Fig. 2)",
      &BlockingQueue::specification(),
      {blocking_queue_test_seq, blocking_queue_test_2t,
       blocking_queue_test_race_deq, blocking_queue_test_fig3}});
  register_benchmark(Benchmark{
      "relaxed-register",
      "Relaxed Register (Sec. 2.2)",
      &RelaxedRegister::specification(),
      {register_test_wr, register_test_two_writers, register_test_hb_chain}});
  register_benchmark(Benchmark{"ttas-lock",
                               "TTAS Lock",
                               &TtasLock::specification(),
                               {ttas_test_2t, ttas_test_3t}});
  register_benchmark(Benchmark{"peterson-lock",
                               "Peterson Lock",
                               &PetersonLock::specification(),
                               {peterson_test}});
  register_benchmark(Benchmark{"lamport-queue",
                               "Lamport SPSC Ring",
                               &LamportQueue::specification(),
                               {lamport_test_1p1c, lamport_test_full}});
  register_benchmark(Benchmark{"concurrent-hashmap",
                               "Concurrent HashMap (Sec. 6.1)",
                               &ConcurrentHashMap::specification(),
                               {chm_test_put_get, chm_test_two_writers}});
}

}  // namespace cds::ds
