// The C/C++11 atomic register accessed by relaxed operations
// (paper Section 2.2): the simplest data structure whose correct behavior
// is irreducibly non-deterministic. A read call may return the value of
// (1) the most recent write in one of its justifying subhistories, or
// (2) any write call concurrent with it — but never a value older than a
// write that happens-before it.
#ifndef CDS_DS_REGISTER_H
#define CDS_DS_REGISTER_H

#include "mc/atomic.h"
#include "spec/annotations.h"
#include "spec/specification.h"

namespace cds::ds {

class RelaxedRegister {
 public:
  RelaxedRegister();

  void write(int v);
  int read();

  static const spec::Specification& specification();

 private:
  mc::Atomic<int> cell_;
  spec::Object obj_;
};

void register_test_wr(mc::Exec& x);        // one writer, one reader
void register_test_two_writers(mc::Exec& x);
void register_test_hb_chain(mc::Exec& x);  // write published via join

}  // namespace cds::ds

#endif  // CDS_DS_REGISTER_H
