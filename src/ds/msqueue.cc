#include "ds/msqueue.h"

#include "inject/inject.h"
#include "spec/seqstate.h"

namespace cds::ds {

using mc::MemoryOrder;
using spec::Ctx;
using spec::IntList;

namespace {
const inject::SiteId kEnqTailLoad = inject::register_site(
    "ms-queue", "enq: tail load", MemoryOrder::acquire, inject::OpKind::kLoad);
const inject::SiteId kEnqNextLoad = inject::register_site(
    "ms-queue", "enq: tail->next load", MemoryOrder::acquire,
    inject::OpKind::kLoad);
const inject::SiteId kEnqPublishCas = inject::register_site(
    "ms-queue", "enq: next publish CAS", MemoryOrder::release,
    inject::OpKind::kRmw);
const inject::SiteId kEnqHelpCas = inject::register_site(
    "ms-queue", "enq: tail help CAS", MemoryOrder::release, inject::OpKind::kRmw);
const inject::SiteId kEnqTailSwing = inject::register_site(
    "ms-queue", "enq: tail swing CAS", MemoryOrder::release,
    inject::OpKind::kRmw);
const inject::SiteId kDeqHeadLoad = inject::register_site(
    "ms-queue", "deq: head load", MemoryOrder::acquire, inject::OpKind::kLoad);
const inject::SiteId kDeqTailLoad = inject::register_site(
    "ms-queue", "deq: tail load", MemoryOrder::acquire, inject::OpKind::kLoad);
const inject::SiteId kDeqNextLoad = inject::register_site(
    "ms-queue", "deq: head->next load", MemoryOrder::acquire,
    inject::OpKind::kLoad);
const inject::SiteId kDeqHelpCas = inject::register_site(
    "ms-queue", "deq: tail help CAS", MemoryOrder::release, inject::OpKind::kRmw);
const inject::SiteId kDeqHeadCas = inject::register_site(
    "ms-queue", "deq: head swing CAS", MemoryOrder::release,
    inject::OpKind::kRmw);
}  // namespace

const spec::Specification& MSQueue::specification() {
  static spec::Specification* s = [] {
    auto* sp = new spec::Specification("MSQueue");
    sp->state<IntList>();
    sp->method("enq").side_effect(
        [](Ctx& c) { c.st<IntList>().push_back(c.arg(0)); });
    // Same justified non-determinism as the simple blocking queue
    // (Section 6.2 notes the M&S dequeue has the same justifying
    // condition): deq may spuriously return empty only when a justifying
    // subhistory leaves the sequential queue empty.
    sp->method("deq")
        .side_effect([](Ctx& c) {
          IntList& q = c.st<IntList>();
          c.s_ret = q.empty() ? -1 : q.front();
          if (c.s_ret != -1 && c.c_ret() != -1) q.pop_front();
        })
        .post([](Ctx& c) { return c.c_ret() == -1 || c.c_ret() == c.s_ret; })
        .justifying_post([](Ctx& c) {
          if (c.c_ret() != -1) return true;
          const IntList& q = c.st<IntList>();
          if (q.empty()) return true;
          // A deq may observe empty despite hb-ordered enqueues when
          // concurrent dequeues drain every element it missed.
          for (std::int64_t v : q) {
            bool claimed = false;
            for (const spec::CallRecord* d : c.concurrent()) {
              if (d->spec->method_at(d->method).name() == "deq" &&
                  d->c_ret == v) {
                claimed = true;
                break;
              }
            }
            if (!claimed) return false;
          }
          return true;
        });
    return sp;
  }();
  return *s;
}

// Nodes model CDSChecker's pre-initialized node pool: data starts at 0, so
// a mis-synchronized dequeue reads a stale 0 (a FIFO/spec violation) rather
// than tripping the uninitialized-load built-in — matching Section 6.4.1,
// where the known M&S bugs were found only by the specification.
MSQueue::MSQueue(Variant v)
    : variant_(v), head_("msq.head"), tail_("msq.tail"), obj_(specification()) {
  Node* dummy = mc::alloc<Node>();
  head_.init(dummy);
  tail_.init(dummy);
}

void MSQueue::enq(int v) {
  spec::Method m(obj_, "enq", {v});
  Node* n = mc::alloc<Node>();
  n->data.store(v, MemoryOrder::relaxed);
  MemoryOrder publish = variant_ == Variant::kBugEnq
                            ? MemoryOrder::relaxed
                            : inject::order(kEnqPublishCas);
  for (;;) {
    Node* t = tail_.load(inject::order(kEnqTailLoad));
    Node* next = t->next.load(inject::order(kEnqNextLoad));
    if (next != nullptr) {
      // Tail is lagging: help swing it forward.
      (void)tail_.compare_exchange_strong(t, next, inject::order(kEnqHelpCas),
                                          MemoryOrder::relaxed);
      mc::yield();
      continue;
    }
    Node* expected = nullptr;
    if (t->next.compare_exchange_strong(expected, n, publish,
                                        MemoryOrder::relaxed)) {
      m.op_define();  // linearization: the successful publish CAS
      (void)tail_.compare_exchange_strong(t, n, inject::order(kEnqTailSwing),
                                          MemoryOrder::relaxed);
      return;
    }
    mc::yield();
  }
}

int MSQueue::deq() {
  spec::Method m(obj_, "deq");
  MemoryOrder next_order = variant_ == Variant::kBugDeq
                               ? MemoryOrder::relaxed
                               : inject::order(kDeqNextLoad);
  for (;;) {
    Node* h = head_.load(inject::order(kDeqHeadLoad));
    Node* t = tail_.load(inject::order(kDeqTailLoad));
    Node* next = h->next.load(next_order);
    m.op_clear_define();  // the next load of the last iteration
    if (h == t) {
      if (next == nullptr) return static_cast<int>(m.ret(-1));
      // Tail lagging: help, then retry.
      (void)tail_.compare_exchange_strong(t, next, inject::order(kDeqHelpCas),
                                          MemoryOrder::relaxed);
      mc::yield();
      continue;
    }
    if (next == nullptr) {
      // Inconsistent snapshot (stale next); retry.
      mc::yield();
      continue;
    }
    int v = next->data.load(MemoryOrder::relaxed);
    if (head_.compare_exchange_strong(h, next, inject::order(kDeqHeadCas),
                                      MemoryOrder::relaxed)) {
      return static_cast<int>(m.ret(v));
    }
    mc::yield();
  }
}

void msqueue_test_1p1c(mc::Exec& x) {
  auto* q = x.make<MSQueue>();
  int t1 = x.spawn([q] {
    q->enq(1);
    q->enq(2);
  });
  int t2 = x.spawn([q] {
    (void)q->deq();
    (void)q->deq();
  });
  x.join(t1);
  x.join(t2);
}

void msqueue_test_2p1c(mc::Exec& x) {
  auto* q = x.make<MSQueue>();
  int t1 = x.spawn([q] { q->enq(1); });
  int t2 = x.spawn([q] { q->enq(2); });
  int t3 = x.spawn([q] { (void)q->deq(); });
  x.join(t1);
  x.join(t2);
  x.join(t3);
}

void msqueue_test_1p2c(mc::Exec& x) {
  auto* q = x.make<MSQueue>();
  int t1 = x.spawn([q] {
    q->enq(1);
    q->enq(2);
  });
  int t2 = x.spawn([q] { (void)q->deq(); });
  int t3 = x.spawn([q] { (void)q->deq(); });
  x.join(t1);
  x.join(t2);
  x.join(t3);
}

void msqueue_test_deq_empty(mc::Exec& x) {
  auto* q = x.make<MSQueue>();
  q->enq(1);
  (void)q->deq();
  (void)q->deq();  // genuinely empty
}

mc::TestFn msqueue_buggy_test(MSQueue::Variant v) {
  return [v](mc::Exec& x) {
    auto* q = x.make<MSQueue>(v);
    int t1 = x.spawn([q] {
      q->enq(1);
      q->enq(2);
    });
    int t2 = x.spawn([q] {
      (void)q->deq();
      (void)q->deq();
    });
    x.join(t1);
    x.join(t2);
  };
}

}  // namespace cds::ds
