// User-level RCU-protected pair (ported for AutoMO; paper Section 6):
// readers dereference a shared pointer and read two plain fields; a writer
// copies the current snapshot into a fresh node, increments both fields,
// and publishes the new pointer with a release store. The plain fields are
// exactly what the built-in race detector guards — every paper injection
// for RCU was caught by built-in checks (Figure 8: 3/3 built-in).
#ifndef CDS_DS_RCU_H
#define CDS_DS_RCU_H

#include "mc/atomic.h"
#include "mc/var.h"
#include "spec/annotations.h"
#include "spec/specification.h"

namespace cds::ds {

class Rcu {
 public:
  Rcu();

  // Returns a + b of one consistent snapshot.
  int read();
  // Increments both fields (single writer at a time in the tests).
  void write();

  static const spec::Specification& specification();

 private:
  struct Snapshot {
    Snapshot() : a("rcu.a"), b("rcu.b") {}
    mc::Var<int> a;
    mc::Var<int> b;
  };

  mc::Atomic<Snapshot*> ptr_;
  spec::Object obj_;
};

void rcu_test_1w1r(mc::Exec& x);
void rcu_test_1w2r(mc::Exec& x);
void rcu_test_2w(mc::Exec& x);

}  // namespace cds::ds

#endif  // CDS_DS_RCU_H
