#include "ds/mpmc_queue.h"

#include <algorithm>

#include "inject/inject.h"
#include "spec/seqstate.h"

namespace cds::ds {

using mc::MemoryOrder;
using spec::Ctx;
using spec::IntList;

namespace {
const inject::SiteId kEnqSeqLoad = inject::register_site(
    "mpmc-queue", "enq: cell seq load", MemoryOrder::acquire,
    inject::OpKind::kLoad);
const inject::SiteId kEnqPosCas = inject::register_site(
    "mpmc-queue", "enq: pos CAS", MemoryOrder::acq_rel, inject::OpKind::kRmw);
const inject::SiteId kEnqSeqStore = inject::register_site(
    "mpmc-queue", "enq: cell seq publish store", MemoryOrder::release,
    inject::OpKind::kStore);
const inject::SiteId kDeqSeqLoad = inject::register_site(
    "mpmc-queue", "deq: cell seq load", MemoryOrder::acquire,
    inject::OpKind::kLoad);
const inject::SiteId kDeqPosCas = inject::register_site(
    "mpmc-queue", "deq: pos CAS", MemoryOrder::acq_rel, inject::OpKind::kRmw);
const inject::SiteId kDeqSeqStore = inject::register_site(
    "mpmc-queue", "deq: cell seq recycle store", MemoryOrder::release,
    inject::OpKind::kStore);
const inject::SiteId kEnqPosLoad = inject::register_site(
    "mpmc-queue", "enq: pos load", MemoryOrder::relaxed, inject::OpKind::kLoad);
const inject::SiteId kDeqPosLoad = inject::register_site(
    "mpmc-queue", "deq: pos load", MemoryOrder::relaxed, inject::OpKind::kLoad);
}  // namespace

const spec::Specification& MpmcQueue::specification() {
  static spec::Specification* s = [] {
    auto* sp = new spec::Specification("MpmcQueue");
    sp->state<IntList>();
    sp->method("enq").side_effect([](Ctx& c) {
      if (c.c_ret() != 0) c.st<IntList>().push_back(c.arg(0));
    });
    // Bag-with-FIFO-per-handoff semantics: a deq returns an element that
    // is present in the sequential state (or empty). The strong ordering
    // property is carried by the admissibility rule below: the deq of an
    // element must be ordered relative to the enq that produced it (the
    // seq-number handoff provides exactly that happens-before edge).
    sp->method("deq")
        .side_effect([](Ctx& c) {
          IntList& q = c.st<IntList>();
          c.s_ret = q.empty() ? -1 : q.front();
          if (c.c_ret() != -1) {
            auto it = std::find(q.begin(), q.end(), c.c_ret());
            if (it != q.end()) {
              q.erase(it);
            } else {
              c.s_ret = -2;  // flags the postcondition failure below
            }
          }
        })
        .post([](Ctx& c) { return c.c_ret() == -1 || c.s_ret != -2; });
    // Unlike the linked queues, deq's spurious empty carries no justifying
    // condition: the cell handoff's claim (cursor CAS) and publication
    // (sequence store) are separate events, so an empty observation can be
    // caused by a claim whose ordering point is on the other side of it in
    // `r` — the paper's MPMC row correspondingly relies on the
    // admissibility rule alone (its detections are all Admissibility, and
    // the paper calls the structure "strictly speaking buggy").
    // Design intent (Section 6.4.2's discussion): the queue is only
    // well-specified when its cell handoffs synchronize — a deq must be
    // ordered with the enq whose value it consumed, and an enq reusing a
    // slot must be ordered with the deq that freed it.
    sp->admit("deq", "enq",
              [](const spec::CallRecord& deq, const spec::CallRecord& enq) {
                return deq.c_ret != -1 && deq.c_ret == enq.args[0];
              });
    return sp;
  }();
  return *s;
}

MpmcQueue::MpmcQueue()
    : enq_pos_(0u, "mpmc.enq_pos"), deq_pos_(0u, "mpmc.deq_pos"),
      obj_(specification()) {
  for (unsigned i = 0; i < kCapacity; ++i) {
    cells_[i].seq.init(i);
  }
}

bool MpmcQueue::enq(int v) {
  spec::Method m(obj_, "enq", {v});
  unsigned pos = enq_pos_.load(inject::order(kEnqPosLoad));
  for (;;) {
    Cell& cell = cells_[pos % kCapacity];
    unsigned seq = cell.seq.load(inject::order(kEnqSeqLoad));
    long dif = static_cast<long>(seq) - static_cast<long>(pos);
    if (dif == 0) {
      m.op_clear_define();  // the seq load that observed the free slot
      if (enq_pos_.compare_exchange_strong(pos, pos + 1,
                                           inject::order(kEnqPosCas),
                                           MemoryOrder::relaxed)) {
        cell.data.store(v, MemoryOrder::relaxed);
        cell.seq.store(pos + 1, inject::order(kEnqSeqStore));
        return static_cast<bool>(m.ret(1));
      }
      mc::yield();
    } else if (dif < 0) {
      m.op_clear_define();  // the seq load that observed a full queue
      (void)m.ret(0);
      return false;
    } else {
      pos = enq_pos_.load(inject::order(kEnqPosLoad));
      mc::yield();
    }
  }
}

int MpmcQueue::deq() {
  spec::Method m(obj_, "deq");
  unsigned pos = deq_pos_.load(inject::order(kDeqPosLoad));
  for (;;) {
    Cell& cell = cells_[pos % kCapacity];
    unsigned seq = cell.seq.load(inject::order(kDeqSeqLoad));
    long dif = static_cast<long>(seq) - static_cast<long>(pos + 1);
    if (dif == 0) {
      m.op_clear_define();  // the seq load that observed the handoff
      if (deq_pos_.compare_exchange_strong(pos, pos + 1,
                                           inject::order(kDeqPosCas),
                                           MemoryOrder::relaxed)) {
        int v = cell.data.load(MemoryOrder::relaxed);
        cell.seq.store(pos + kCapacity, inject::order(kDeqSeqStore));
        return static_cast<int>(m.ret(v));
      }
      mc::yield();
    } else if (dif < 0) {
      m.op_clear_define();  // the seq load that observed an empty queue
      return static_cast<int>(m.ret(-1));
    } else {
      pos = deq_pos_.load(inject::order(kDeqPosLoad));
      mc::yield();
    }
  }
}

void mpmc_test_1p1c(mc::Exec& x) {
  auto* q = x.make<MpmcQueue>();
  int t1 = x.spawn([q] {
    (void)q->enq(1);
    (void)q->enq(2);
  });
  int t2 = x.spawn([q] {
    (void)q->deq();
    (void)q->deq();
  });
  x.join(t1);
  x.join(t2);
}

void mpmc_test_wrap(mc::Exec& x) {
  // Three enqueues through a two-cell ring: the third reuses a slot and
  // must synchronize with the dequeue that recycled it.
  auto* q = x.make<MpmcQueue>();
  int t1 = x.spawn([q] {
    (void)q->enq(1);
    (void)q->enq(2);
    (void)q->enq(3);  // may observe full; wraps when a deq freed cell 0
  });
  int t2 = x.spawn([q] {
    (void)q->deq();
    (void)q->deq();
    (void)q->deq();
  });
  x.join(t1);
  x.join(t2);
}

void mpmc_test_2p1c(mc::Exec& x) {
  auto* q = x.make<MpmcQueue>();
  int t1 = x.spawn([q] { (void)q->enq(1); });
  int t2 = x.spawn([q] { (void)q->enq(2); });
  int t3 = x.spawn([q] { (void)q->deq(); });
  x.join(t1);
  x.join(t2);
  x.join(t3);
}

void mpmc_test_2p2c(mc::Exec& x) {
  auto* q = x.make<MpmcQueue>();
  int t1 = x.spawn([q] { (void)q->enq(1); });
  int t2 = x.spawn([q] { (void)q->enq(2); });
  int t3 = x.spawn([q] { (void)q->deq(); });
  int t4 = x.spawn([q] { (void)q->deq(); });
  x.join(t1);
  x.join(t2);
  x.join(t3);
  x.join(t4);
}

}  // namespace cds::ds
