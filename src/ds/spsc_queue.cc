#include "ds/spsc_queue.h"

#include "inject/inject.h"
#include "spec/seqstate.h"

namespace cds::ds {

using mc::MemoryOrder;
using spec::Ctx;
using spec::IntList;

namespace {
const inject::SiteId kPublish = inject::register_site(
    "spsc-queue", "enq: next publish store", MemoryOrder::release,
    inject::OpKind::kStore);
const inject::SiteId kConsume = inject::register_site(
    "spsc-queue", "deq: next load", MemoryOrder::acquire, inject::OpKind::kLoad);
}  // namespace

const spec::Specification& SpscQueue::specification() {
  static spec::Specification* s = [] {
    auto* sp = new spec::Specification("SpscQueue");
    sp->state<IntList>();
    sp->method("enq").side_effect(
        [](Ctx& c) { c.st<IntList>().push_back(c.arg(0)); });
    sp->method("deq")
        .side_effect([](Ctx& c) {
          IntList& q = c.st<IntList>();
          c.s_ret = q.empty() ? -1 : q.front();
          if (c.s_ret != -1 && c.c_ret() != -1) q.pop_front();
        })
        .post([](Ctx& c) { return c.c_ret() == -1 || c.c_ret() == c.s_ret; })
        .justifying_post([](Ctx& c) {
          if (c.c_ret() != -1) return true;
          const IntList& q = c.st<IntList>();
          if (q.empty()) return true;
          // A deq may observe empty despite hb-ordered enqueues when
          // concurrent dequeues drain every element it missed.
          for (std::int64_t v : q) {
            bool claimed = false;
            for (const spec::CallRecord* d : c.concurrent()) {
              if (d->spec->method_at(d->method).name() == "deq" &&
                  d->c_ret == v) {
                claimed = true;
                break;
              }
            }
            if (!claimed) return false;
          }
          return true;
        });
    return sp;
  }();
  return *s;
}

SpscQueue::SpscQueue()
    : tail_("spsc.tail"), head_("spsc.head"), obj_(specification()) {
  Node* dummy = mc::alloc<Node>();
  tail_.write(dummy);
  head_.write(dummy);
}

void SpscQueue::enq(int v) {
  spec::Method m(obj_, "enq", {v});
  Node* n = mc::alloc<Node>();
  n->data.store(v, MemoryOrder::relaxed);
  Node* t = tail_.read();
  t->next.store(n, inject::order(kPublish));
  m.op_define();  // the publishing store orders the enq call
  tail_.write(n);
}

int SpscQueue::deq() {
  spec::Method m(obj_, "deq");
  Node* h = head_.read();
  Node* n = h->next.load(inject::order(kConsume));
  m.op_define();  // the consuming load orders the deq call
  if (n == nullptr) return static_cast<int>(m.ret(-1));
  head_.write(n);
  return static_cast<int>(m.ret(n->data.load(MemoryOrder::relaxed)));
}

void spsc_test_1p1c(mc::Exec& x) {
  auto* q = x.make<SpscQueue>();
  int t1 = x.spawn([q] {
    q->enq(1);
    q->enq(2);
  });
  int t2 = x.spawn([q] {
    (void)q->deq();
    (void)q->deq();
  });
  x.join(t1);
  x.join(t2);
}

void spsc_test_burst(mc::Exec& x) {
  auto* q = x.make<SpscQueue>();
  int t1 = x.spawn([q] {
    q->enq(10);
    q->enq(20);
    q->enq(30);
  });
  int t2 = x.spawn([q] {
    int got = 0;
    for (int i = 0; i < 4 && got < 3; ++i) {
      if (q->deq() != -1) ++got;
    }
  });
  x.join(t1);
  x.join(t2);
}

}  // namespace cds::ds
