// The paper's running example (Figures 2 & 6): a simple blocking queue with
// release/acquire synchronization. Enqueuers race to CAS a new node onto
// tail->next; dequeuers race to CAS head forward. Dequeue returns -1 when
// it observes an empty queue. Nodes are never recycled.
#ifndef CDS_DS_BLOCKING_QUEUE_H
#define CDS_DS_BLOCKING_QUEUE_H

#include "mc/atomic.h"
#include "mc/engine.h"
#include "spec/annotations.h"
#include "spec/specification.h"

namespace cds::ds {

class BlockingQueue {
 public:
  // Bind to the non-deterministic spec (default) or the deterministic
  // spec with admissibility rules (paper Section 2.3, options 1 vs 2).
  explicit BlockingQueue(const spec::Specification& s = specification());

  void enq(int val);
  int deq();  // -1 when (observed) empty

  // Option 2: non-deterministic specification — deq may spuriously return
  // empty, justified by a justifying subhistory in which the sequential
  // queue is also empty (Figure 6).
  static const spec::Specification& specification();
  // Option 1: deterministic specification with the admissibility rule
  // @Admit: deq <-> enq (M1->C_RET == -1).
  static const spec::Specification& deterministic_specification();

 private:
  struct Node {
    Node() : data("bq.data"), next(nullptr, "bq.next") {}
    mc::Atomic<int> data;  // uninitialized until the enqueuer stores it
    mc::Atomic<Node*> next;
  };

  mc::Atomic<Node*> tail_;
  mc::Atomic<Node*> head_;
  spec::Object obj_;
};

// Unit-test drivers (shared by tests, benches, and examples).
void blocking_queue_test_seq(mc::Exec& x);       // single thread, FIFO
void blocking_queue_test_2t(mc::Exec& x);        // producer/consumer
void blocking_queue_test_race_deq(mc::Exec& x);  // two dequeuers, one enq
void blocking_queue_test_fig3(mc::Exec& x);      // Figure 3: two queues

}  // namespace cds::ds

#endif  // CDS_DS_BLOCKING_QUEUE_H
