// Michael & Scott non-blocking queue (paper Section 6, from the CDSChecker
// benchmark suite), with the lagging-tail helping protocol.
//
// Known bugs (Section 6.4.1): AutoMO found two memory-order bugs in the
// C11 port — weaker-than-necessary parameters that let a dequeue
// spuriously return empty or break FIFO order. `Variant` reproduces them:
//   kBugEnq — the enqueue's publishing CAS on next is relaxed, so the
//             dequeuer does not synchronize with the enqueuer.
//   kBugDeq — the dequeue's load of next is relaxed, so the dequeuer can
//             miss the publication it acts on.
#ifndef CDS_DS_MSQUEUE_H
#define CDS_DS_MSQUEUE_H

#include "mc/atomic.h"
#include "spec/annotations.h"
#include "spec/specification.h"

namespace cds::ds {

class MSQueue {
 public:
  enum class Variant { kCorrect, kBugEnq, kBugDeq };

  explicit MSQueue(Variant v = Variant::kCorrect);

  void enq(int v);
  int deq();  // -1 when (observed) empty

  static const spec::Specification& specification();

 private:
  struct Node {
    Node() : data(0, "msq.data"), next(nullptr, "msq.next") {}
    mc::Atomic<int> data;
    mc::Atomic<Node*> next;
  };

  Variant variant_;
  mc::Atomic<Node*> head_;
  mc::Atomic<Node*> tail_;
  spec::Object obj_;
};

void msqueue_test_1p1c(mc::Exec& x);
void msqueue_test_2p1c(mc::Exec& x);
void msqueue_test_1p2c(mc::Exec& x);
void msqueue_test_deq_empty(mc::Exec& x);
// Same drivers against a buggy variant (known-bug experiments).
mc::TestFn msqueue_buggy_test(MSQueue::Variant v);

}  // namespace cds::ds

#endif  // CDS_DS_MSQUEUE_H
