#include "ds/ticket_lock.h"

#include "inject/inject.h"

namespace cds::ds {

using mc::MemoryOrder;
using spec::Ctx;

namespace {
const inject::SiteId kServeLoad = inject::register_site(
    "ticket-lock", "lock: nowServing load", MemoryOrder::acquire,
    inject::OpKind::kLoad);
const inject::SiteId kGrabTicket = inject::register_site(
    "ticket-lock", "lock: curTicket fetch_add", MemoryOrder::relaxed,
    inject::OpKind::kRmw);  // already relaxed: not injectable (paper: 2 injections)
const inject::SiteId kServeStore = inject::register_site(
    "ticket-lock", "unlock: nowServing store", MemoryOrder::release,
    inject::OpKind::kStore);
}  // namespace

const spec::Specification& TicketLock::specification() {
  static spec::Specification* s = [] {
    auto* sp = new spec::Specification("TicketLock");
    sp->state<LockSpecState>();
    sp->method("lock")
        .pre([](Ctx& c) { return !c.st<LockSpecState>().held; })
        .side_effect([](Ctx& c) { c.st<LockSpecState>().held = true; });
    sp->method("unlock")
        .pre([](Ctx& c) { return c.st<LockSpecState>().held; })
        .side_effect([](Ctx& c) { c.st<LockSpecState>().held = false; });
    return sp;
  }();
  return *s;
}

TicketLock::TicketLock()
    : cur_ticket_(0u, "ticket.cur"),
      now_serving_(0u, "ticket.serving"),
      obj_(specification()) {}

void TicketLock::lock() {
  spec::Method m(obj_, "lock");
  unsigned ticket = cur_ticket_.fetch_add(1u, inject::order(kGrabTicket));
  for (;;) {
    unsigned serving = now_serving_.load(inject::order(kServeLoad));
    m.op_clear_define();  // the load from the last iteration orders the call
    if (serving == ticket) break;
    mc::yield();
  }
}

void TicketLock::unlock() {
  spec::Method m(obj_, "unlock");
  unsigned s = now_serving_.load(MemoryOrder::relaxed);  // owned while held
  now_serving_.store(s + 1u, inject::order(kServeStore));
  m.op_define();
}

void ticket_lock_test_2t(mc::Exec& x) {
  auto* l = x.make<TicketLock>();
  auto body = [l] {
    l->lock();
    l->unlock();
  };
  int t1 = x.spawn(body);
  int t2 = x.spawn(body);
  x.join(t1);
  x.join(t2);
}

void ticket_lock_test_3t(mc::Exec& x) {
  auto* l = x.make<TicketLock>();
  auto body = [l] {
    l->lock();
    l->unlock();
  };
  int t1 = x.spawn(body);
  int t2 = x.spawn(body);
  int t3 = x.spawn([l] {
    l->lock();
    l->unlock();
    l->lock();
    l->unlock();
  });
  x.join(t1);
  x.join(t2);
  x.join(t3);
}

}  // namespace cds::ds
