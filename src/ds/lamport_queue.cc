#include "ds/lamport_queue.h"

#include "inject/inject.h"
#include "spec/seqstate.h"

namespace cds::ds {

using mc::MemoryOrder;
using spec::Ctx;
using spec::IntList;

namespace {
const inject::SiteId kEnqTailLoad = inject::register_site(
    "lamport-queue", "enq: tail load", MemoryOrder::acquire,
    inject::OpKind::kLoad);
const inject::SiteId kEnqHeadStore = inject::register_site(
    "lamport-queue", "enq: head publish store", MemoryOrder::release,
    inject::OpKind::kStore);
const inject::SiteId kDeqHeadLoad = inject::register_site(
    "lamport-queue", "deq: head load", MemoryOrder::acquire,
    inject::OpKind::kLoad);
const inject::SiteId kDeqTailStore = inject::register_site(
    "lamport-queue", "deq: tail release store", MemoryOrder::release,
    inject::OpKind::kStore);
}  // namespace

const spec::Specification& LamportQueue::specification() {
  static spec::Specification* s = [] {
    auto* sp = new spec::Specification("LamportQueue");
    sp->state<IntList>();
    sp->method("enq").side_effect([](Ctx& c) {
      if (c.c_ret() != 0) c.st<IntList>().push_back(c.arg(0));
    });
    sp->method("deq")
        .side_effect([](Ctx& c) {
          IntList& q = c.st<IntList>();
          c.s_ret = q.empty() ? -1 : q.front();
          if (c.s_ret != -1 && c.c_ret() != -1) q.pop_front();
        })
        .post([](Ctx& c) { return c.c_ret() == -1 || c.c_ret() == c.s_ret; })
        .justifying_post([](Ctx& c) {
          if (c.c_ret() == -1) return c.s_ret == -1;
          return true;
        });
    return sp;
  }();
  return *s;
}

LamportQueue::LamportQueue()
    : head_(0u, "lq.head"),
      tail_(0u, "lq.tail"),
      buf_{{0, "lq.buf"}, {0, "lq.buf"}},
      obj_(specification()) {}

bool LamportQueue::enq(int v) {
  spec::Method m(obj_, "enq", {v});
  unsigned h = head_.load(MemoryOrder::relaxed);  // producer-owned
  unsigned t = tail_.load(inject::order(kEnqTailLoad));
  if ((h + 1) % kCapacity == t % kCapacity) {
    m.op_define();  // the tail load that observed a full ring
    (void)m.ret(0);
    return false;
  }
  buf_[h % kCapacity].store(v, MemoryOrder::relaxed);
  head_.store(h + 1, inject::order(kEnqHeadStore));
  m.op_define();  // the publishing cursor store
  (void)m.ret(1);
  return true;
}

int LamportQueue::deq() {
  spec::Method m(obj_, "deq");
  unsigned t = tail_.load(MemoryOrder::relaxed);  // consumer-owned
  unsigned h = head_.load(inject::order(kDeqHeadLoad));
  m.op_clear_define();  // the head load orders the deq (empty or not)
  if (t % kCapacity == h % kCapacity) return static_cast<int>(m.ret(-1));
  int v = buf_[t % kCapacity].load(MemoryOrder::relaxed);
  tail_.store(t + 1, inject::order(kDeqTailStore));
  return static_cast<int>(m.ret(v));
}

void lamport_test_1p1c(mc::Exec& x) {
  auto* q = x.make<LamportQueue>();
  int t1 = x.spawn([q] { (void)q->enq(1); });
  int t2 = x.spawn([q] {
    (void)q->deq();
    (void)q->deq();
  });
  x.join(t1);
  x.join(t2);
}

void lamport_test_full(mc::Exec& x) {
  // Capacity 2 ring holds one element: the second enq observes full unless
  // the consumer freed the slot. End-to-end conservation is asserted with
  // a CDSChecker-style model_assert (footnote 6: assertions complement the
  // specification machinery).
  auto* q = x.make<LamportQueue>();
  int produced = 0;
  int consumed = 0;
  int t1 = x.spawn([q, &produced] {
    if (q->enq(10)) ++produced;
    if (q->enq(20)) ++produced;
  });
  int t2 = x.spawn([q, &consumed] {
    for (int i = 0; i < 3; ++i) {
      if (q->deq() != -1) ++consumed;
    }
  });
  x.join(t1);
  x.join(t2);
  while (q->deq() != -1) ++consumed;
  mc::model_assert(consumed == produced,
                   "every accepted element is dequeued exactly once");
}

}  // namespace cds::ds
