// Seqlock (ported for AutoMO; paper Section 6): writers bump a sequence
// counter to odd, update the data words, and bump back to even; readers
// snapshot the counter, read the data, and retry when the counter moved or
// was odd. Reads must never observe a torn (mixed-version) pair.
#ifndef CDS_DS_SEQLOCK_H
#define CDS_DS_SEQLOCK_H

#include "mc/atomic.h"
#include "spec/annotations.h"
#include "spec/specification.h"

namespace cds::ds {

class SeqLock {
 public:
  SeqLock();

  // Writes the pair (v, v) — readers check both words agree.
  void write(int v);
  // Returns the snapshotted value.
  int read();

  static const spec::Specification& specification();

 private:
  mc::Atomic<unsigned> seq_;
  mc::Atomic<int> data1_;
  mc::Atomic<int> data2_;
  spec::Object obj_;
};

void seqlock_test_1w1r(mc::Exec& x);
void seqlock_test_2w(mc::Exec& x);
void seqlock_test_2w1r(mc::Exec& x);

}  // namespace cds::ds

#endif  // CDS_DS_SEQLOCK_H
