#include "ds/register.h"

#include <algorithm>
#include <vector>

namespace cds::ds {

using mc::MemoryOrder;
using spec::Ctx;

namespace {
// Sequential state: the full write history (so the justifying check can
// ask "was v the most recent write?" for any subhistory, and the
// concurrent check can ask "did a concurrent write store v?").
struct RegState {
  std::vector<std::int64_t> writes;  // in sequential order
  std::int64_t initial = 0;

  [[nodiscard]] std::int64_t last() const {
    return writes.empty() ? initial : writes.back();
  }
};
}  // namespace

const spec::Specification& RelaxedRegister::specification() {
  static spec::Specification* s = [] {
    auto* sp = new spec::Specification("RelaxedRegister");
    sp->state<RegState>();
    sp->method("write").side_effect(
        [](Ctx& c) { c.st<RegState>().writes.push_back(c.arg(0)); });
    sp->method("read")
        .side_effect([](Ctx& c) { c.s_ret = c.st<RegState>().last(); })
        // In a full sequential history the read may lag (older writes are
        // ordered before it only by the history, not by hb), so the
        // postcondition only requires the value to be *some* write (or
        // the initial value) — the precision lives in the justification.
        .post([](Ctx& c) {
          const RegState& st = c.st<RegState>();
          if (c.c_ret() == st.initial) return true;
          if (std::find(st.writes.begin(), st.writes.end(), c.c_ret()) !=
              st.writes.end()) {
            return true;
          }
          // A history may order this read before the write it observed;
          // a value from a concurrent write is still legal (Definition 4).
          for (const spec::CallRecord* w : c.concurrent()) {
            if (w->spec->method_at(w->method).name() == "write" &&
                w->arg(0) == c.c_ret()) {
              return true;
            }
          }
          return false;
        })
        // Justified iff the read returns the most recent write of one of
        // its justifying subhistories (all hb-predecessors), or the value
        // of a concurrent write (Definition 4 case 2).
        .justifying_post([](Ctx& c) {
          if (c.c_ret() == c.s_ret) return true;
          for (const spec::CallRecord* mc_call : c.concurrent()) {
            if (mc_call->spec->method_at(mc_call->method).name() == "write" &&
                mc_call->arg(0) == c.c_ret()) {
              return true;
            }
          }
          return false;
        });
    return sp;
  }();
  return *s;
}

RelaxedRegister::RelaxedRegister()
    : cell_(0, "reg.cell"), obj_(specification()) {}

void RelaxedRegister::write(int v) {
  spec::Method m(obj_, "write", {v});
  cell_.store(v, MemoryOrder::relaxed);
  m.op_define();
  m.ret(0);
}

int RelaxedRegister::read() {
  spec::Method m(obj_, "read");
  int v = cell_.load(MemoryOrder::relaxed);
  m.op_define();
  return static_cast<int>(m.ret(v));
}

void register_test_wr(mc::Exec& x) {
  auto* r = x.make<RelaxedRegister>();
  int t1 = x.spawn([r] { r->write(1); });
  int t2 = x.spawn([r] { (void)r->read(); });
  x.join(t1);
  x.join(t2);
}

void register_test_two_writers(mc::Exec& x) {
  auto* r = x.make<RelaxedRegister>();
  int t1 = x.spawn([r] { r->write(1); });
  int t2 = x.spawn([r] {
    r->write(2);
    (void)r->read();
  });
  x.join(t1);
  x.join(t2);
  (void)r->read();
}

void register_test_hb_chain(mc::Exec& x) {
  auto* r = x.make<RelaxedRegister>();
  int t1 = x.spawn([r] { r->write(7); });
  x.join(t1);
  // Joined: the write happens-before this read; it must return 7.
  (void)r->read();
}

}  // namespace cds::ds
