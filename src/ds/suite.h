// Registers the paper's Section 6 benchmark suite (the ten Figure 7/8 rows
// plus the expressiveness extras) with the harness. Idempotent.
#ifndef CDS_DS_SUITE_H
#define CDS_DS_SUITE_H

namespace cds::ds {

void register_all_benchmarks();

}  // namespace cds::ds

#endif  // CDS_DS_SUITE_H
