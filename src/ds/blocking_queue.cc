#include "ds/blocking_queue.h"

#include "spec/seqstate.h"

namespace cds::ds {

using mc::MemoryOrder;
using spec::Ctx;
using spec::IntList;

// /** @DeclareState: IntList *q; */  (Figure 6, line 1)
const spec::Specification& BlockingQueue::specification() {
  static spec::Specification* s = [] {
    auto* sp = new spec::Specification("BlockingQueue");
    sp->state<IntList>();
    // /** @SideEffect: STATE(q)->push_back(val); */
    sp->method("enq").side_effect(
        [](Ctx& c) { c.st<IntList>().push_back(c.arg(0)); });
    // /** @SideEffect:
    //     S_RET = STATE(q)->empty() ? -1 : STATE(q)->front();
    //     if (S_RET != -1 && C_RET != -1) STATE(q)->pop_front();
    //     @PostCondition:
    //     return C_RET == -1 ? true : C_RET == S_RET;
    //     @JustifyingPostcondition: if (C_RET == -1)
    //     return S_RET == -1; */
    sp->method("deq")
        .side_effect([](Ctx& c) {
          IntList& q = c.st<IntList>();
          c.s_ret = q.empty() ? -1 : q.front();
          if (c.s_ret != -1 && c.c_ret() != -1) q.pop_front();
        })
        .post([](Ctx& c) { return c.c_ret() == -1 || c.c_ret() == c.s_ret; })
        .justifying_post([](Ctx& c) {
          if (c.c_ret() != -1) return true;
          const IntList& q = c.st<IntList>();
          if (q.empty()) return true;
          // A deq may observe empty despite hb-ordered enqueues when
          // concurrent dequeues drain every element it missed.
          for (std::int64_t v : q) {
            bool claimed = false;
            for (const spec::CallRecord* d : c.concurrent()) {
              if (d->spec->method_at(d->method).name() == "deq" &&
                  d->c_ret == v) {
                claimed = true;
                break;
              }
            }
            if (!claimed) return false;
          }
          return true;
        });
    return sp;
  }();
  return *s;
}

const spec::Specification& BlockingQueue::deterministic_specification() {
  static spec::Specification* s = [] {
    auto* sp = new spec::Specification("BlockingQueueDet");
    sp->state<IntList>();
    sp->method("enq").side_effect(
        [](Ctx& c) { c.st<IntList>().push_back(c.arg(0)); });
    // Deterministic FIFO: deq must return the front (or -1 on a genuinely
    // empty queue).
    sp->method("deq")
        .side_effect([](Ctx& c) {
          IntList& q = c.st<IntList>();
          c.s_ret = q.empty() ? -1 : q.front();
          if (c.s_ret != -1) q.pop_front();
        })
        .post([](Ctx& c) { return c.c_ret() == c.s_ret; });
    // @Admit: deq <-> enq (M1->C_RET == -1): a deq returning empty must be
    // ordered relative to every enq for the deterministic spec to apply.
    sp->admit("deq", "enq",
              [](const spec::CallRecord& m1, const spec::CallRecord&) {
                return m1.c_ret == -1;
              });
    return sp;
  }();
  return *s;
}

BlockingQueue::BlockingQueue(const spec::Specification& s)
    : tail_("bq.tail"), head_("bq.head"), obj_(s) {
  Node* dummy = mc::alloc<Node>();
  tail_.init(dummy);
  head_.init(dummy);
}

void BlockingQueue::enq(int val) {
  spec::Method m(obj_, "enq", {val});
  Node* n = mc::alloc<Node>();
  n->data.store(val, MemoryOrder::relaxed);
  while (true) {
    Node* t = tail_.load(MemoryOrder::acquire);
    Node* old = nullptr;
    if (t->next.compare_exchange_strong(old, n, MemoryOrder::release,
                                        MemoryOrder::relaxed)) {
      m.op_define();  // /** @OPDefine: true */  (Figure 6, line 10)
      tail_.store(n, MemoryOrder::release);
      return;
    }
    mc::yield();
  }
}

int BlockingQueue::deq() {
  spec::Method m(obj_, "deq");
  while (true) {
    Node* h = head_.load(MemoryOrder::acquire);
    Node* n = h->next.load(MemoryOrder::acquire);
    m.op_clear_define();  // /** @OPClearDefine: true */  (Figure 6, line 27)
    if (n == nullptr) return static_cast<int>(m.ret(-1));
    if (head_.compare_exchange_strong(h, n, MemoryOrder::release,
                                      MemoryOrder::relaxed)) {
      return static_cast<int>(m.ret(n->data.load(MemoryOrder::relaxed)));
    }
    mc::yield();
  }
}

// ---------------------------------------------------------------------------
// Unit-test drivers
// ---------------------------------------------------------------------------

void blocking_queue_test_seq(mc::Exec& x) {
  auto* q = x.make<BlockingQueue>();
  q->enq(1);
  q->enq(2);
  (void)q->deq();
  (void)q->deq();
  (void)q->deq();  // empty
}

void blocking_queue_test_2t(mc::Exec& x) {
  auto* q = x.make<BlockingQueue>();
  int t1 = x.spawn([q] {
    q->enq(1);
    q->enq(2);
  });
  int t2 = x.spawn([q] {
    (void)q->deq();
    (void)q->deq();
  });
  x.join(t1);
  x.join(t2);
}

void blocking_queue_test_race_deq(mc::Exec& x) {
  auto* q = x.make<BlockingQueue>();
  int t1 = x.spawn([q] { q->enq(1); });
  int t2 = x.spawn([q] { (void)q->deq(); });
  int t3 = x.spawn([q] { (void)q->deq(); });
  x.join(t1);
  x.join(t2);
  x.join(t3);
}

void blocking_queue_test_fig3(mc::Exec& x) {
  // Paper Figure 3: with queues x and y initially empty, both deq calls
  // may return -1 — a non-linearizable but correct (justified) execution.
  auto* qx = x.make<BlockingQueue>();
  auto* qy = x.make<BlockingQueue>();
  int t1 = x.spawn([&] {
    qx->enq(1);
    (void)qy->deq();
  });
  int t2 = x.spawn([&] {
    qy->enq(1);
    (void)qx->deq();
  });
  x.join(t1);
  x.join(t2);
}

}  // namespace cds::ds
