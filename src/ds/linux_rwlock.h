// Port of the Linux kernel's bias-based reader-writer spinlock (paper
// Sections 6 and 6.1): a single lock word starts at RW_LOCK_BIAS; readers
// subtract 1, a writer subtracts the whole bias. Trylock variants have a
// *transient side effect* — they subtract and then restore the bias on
// failure — which is why the paper's initially-deterministic spec for
// write_trylock was wrong and had to be refined to allow spurious failure
// (the iterative-refinement story of Section 6.1). Both specifications are
// provided.
#ifndef CDS_DS_LINUX_RWLOCK_H
#define CDS_DS_LINUX_RWLOCK_H

#include "mc/atomic.h"
#include "spec/annotations.h"
#include "spec/specification.h"

namespace cds::ds {

class LinuxRwLock {
 public:
  static constexpr int kBias = 0x01000000;

  explicit LinuxRwLock(const spec::Specification& s = specification());

  void read_lock();
  void read_unlock();
  void write_lock();
  void write_unlock();
  int read_trylock();   // 1 on success, 0 on failure
  int write_trylock();  // 1 on success, 0 on failure

  // Refined spec: trylocks may spuriously fail (racing trylocks observe
  // each other's transient bias subtraction).
  static const spec::Specification& specification();
  // The paper's first attempt: write_trylock must succeed whenever the
  // sequential lock is free. CDSSpec reports a violation against this spec
  // on the correct implementation — kept for the refinement experiment.
  static const spec::Specification& strict_trylock_specification();

 private:
  mc::Atomic<int> lock_;
  spec::Object obj_;
};

struct RwLockSpecState {
  bool writer = false;
  int readers = 0;
};

void rwlock_test_rw(mc::Exec& x);
void rwlock_test_2w(mc::Exec& x);
void rwlock_test_trylock(mc::Exec& x);
void rwlock_test_3t_mixed(mc::Exec& x);
void rwlock_test_racing_trylocks(mc::Exec& x);

}  // namespace cds::ds

#endif  // CDS_DS_LINUX_RWLOCK_H
