#include "ds/ttas_lock.h"

#include "ds/ticket_lock.h"  // LockSpecState
#include "inject/inject.h"

namespace cds::ds {

using mc::MemoryOrder;
using spec::Ctx;

namespace {
const inject::SiteId kAcquireXchg = inject::register_site(
    "ttas-lock", "lock: exchange", MemoryOrder::acquire, inject::OpKind::kRmw);
const inject::SiteId kSpinLoad = inject::register_site(
    "ttas-lock", "lock: test load", MemoryOrder::relaxed, inject::OpKind::kLoad);
const inject::SiteId kReleaseStore = inject::register_site(
    "ttas-lock", "unlock: release store", MemoryOrder::release,
    inject::OpKind::kStore);
}  // namespace

const spec::Specification& TtasLock::specification() {
  static spec::Specification* s = [] {
    auto* sp = new spec::Specification("TtasLock");
    sp->state<LockSpecState>();
    sp->method("lock")
        .pre([](Ctx& c) { return !c.st<LockSpecState>().held; })
        .side_effect([](Ctx& c) { c.st<LockSpecState>().held = true; });
    sp->method("unlock")
        .pre([](Ctx& c) { return c.st<LockSpecState>().held; })
        .side_effect([](Ctx& c) { c.st<LockSpecState>().held = false; });
    return sp;
  }();
  return *s;
}

TtasLock::TtasLock() : locked_(0, "ttas.locked"), obj_(specification()) {}

void TtasLock::lock() {
  spec::Method m(obj_, "lock");
  for (;;) {
    // Test before test-and-set: spin read-only while held.
    while (locked_.load(inject::order(kSpinLoad)) != 0) mc::yield();
    if (locked_.exchange(1, inject::order(kAcquireXchg)) == 0) {
      m.op_clear_define();  // the winning exchange orders the call
      return;
    }
    mc::yield();
  }
}

void TtasLock::unlock() {
  spec::Method m(obj_, "unlock");
  locked_.store(0, inject::order(kReleaseStore));
  m.op_define();
}

void ttas_test_2t(mc::Exec& x) {
  auto* l = x.make<TtasLock>();
  auto body = [l] {
    l->lock();
    l->unlock();
  };
  int t1 = x.spawn(body);
  int t2 = x.spawn(body);
  x.join(t1);
  x.join(t2);
}

void ttas_test_3t(mc::Exec& x) {
  auto* l = x.make<TtasLock>();
  auto body = [l] {
    l->lock();
    l->unlock();
  };
  int t1 = x.spawn(body);
  int t2 = x.spawn(body);
  int t3 = x.spawn(body);
  x.join(t1);
  x.join(t2);
  x.join(t3);
}

}  // namespace cds::ds
