// Umbrella header: everything a user needs to model-check a concurrent
// data structure against a CDSSpec specification.
//
//   #include "cdsspec.h"
//
//   - cds::mc       — the C/C++11 memory-model exploration engine
//                     (Atomic<T>, Var<T>, Mutex, fences, Engine, Exec)
//   - cds::spec     — the specification DSL and checker
//                     (Specification, Method/Object annotations, SpecChecker)
//   - cds::inject   — the memory-order injection framework
//   - cds::harness  — run helpers and the benchmark registry
#ifndef CDS_CDSSPEC_H
#define CDS_CDSSPEC_H

#include "harness/runner.h"
#include "inject/inject.h"
#include "mc/atomic.h"
#include "mc/engine.h"
#include "mc/sync.h"
#include "mc/var.h"
#include "spec/annotations.h"
#include "spec/checker.h"
#include "spec/seqstate.h"
#include "spec/specification.h"

#endif  // CDS_CDSSPEC_H
