// Persistent trails: a compact, versioned textual format for choice
// sequences (.trail files), plus the config fingerprint that makes a trail
// a self-contained one-execution repro.
//
// The explorer is stateless: every execution is a deterministic function of
// its recorded choice sequence. Serializing that sequence turns any
// execution — in particular a violating one — into a one-file artifact that
// `cdsspec-run --replay-trail <file>` (or cdsspec-fuzz, for litmus
// programs) re-executes deterministically, with the debug-build replay
// determinism assertion promoted to a runtime divergence check.
//
// Format (line-oriented, '#' starts a comment, order fixed):
//   cdsspec-trail v2
//   test msqueue#2
//   seed 11400714819323198485
//   backend stress                       # optional: "model" (default) or
//                                        # "stress"; any other token rejected
//   kind data-race                       # optional: wire_name(ViolationKind)
//   detail read of 'head' races ...      # optional, newlines flattened
//   inject msqueue/enqueue-tail-store    # optional: active injection site
//   explore rf                           # optional: exploration mode; absent
//                                        # means "schedule" (the default)
//   config stale=3 max_steps=20000 strengthen_sc=0 sleep_sets=1
//   choices 3
//   S 1/2                                # schedule: chose 1 of 2
//   R 0/3                                # reads-from: chose 0 of 3
//   S 0/2
//   end
#ifndef CDS_MC_TRACE_H
#define CDS_MC_TRACE_H

#include <string>
#include <vector>

#include "mc/config.h"
#include "mc/trail.h"

namespace cds::mc {

struct TrailFile {
  // v2: Xorshift64::below() switched from modulo reduction to rejection
  // sampling, changing every random-mode choice stream; v1 trails recorded
  // from sampled executions would silently replay a different schedule, so
  // the version gates them out.
  static constexpr int kVersion = 2;

  // Identity: which test body this trail drives ("<benchmark>#<index>" for
  // registry benchmarks, "litmus" for fuzzer programs).
  std::string test_name;
  std::uint64_t seed = 0;

  // Which backend recorded the trail: "" or "model" for the model checker
  // (the parser normalizes "model" to "" so round-trips are exact),
  // "stress" for the stress backend. Model trails carry the engine's
  // choice sequence and replay exactly; stress trails carry the iteration
  // seed plus the thread-major preemption decision stream, and replay by
  // re-running the iteration under that seed (probabilistic — the decision
  // stream is deterministic, the hardware schedule is not).
  std::string backend;

  // What the recorded execution exhibited ("" when the trail was exported
  // manually rather than from a violation).
  std::string kind;
  std::string detail;

  // The bug-injection site active when the trail was recorded ("" for an
  // unmodified run). Opaque to this layer; cdsspec-run re-activates the
  // named site before replaying, since the injected memory order shapes
  // the choice tree the trail indexes into.
  std::string inject_site;

  // Exploration mode the trail was recorded under. rf-mode trails carry
  // kReadsFrom choices with a trailing "wait" alternative and schedule
  // trails never do, so replaying under the wrong mode desynchronizes;
  // rendered as an optional "explore rf" line (absent for the default
  // schedule mode, keeping pre-rf trails parseable unchanged).
  ExploreMode explore = ExploreMode::kSchedule;

  // Config fingerprint: the exploration parameters that shape the choice
  // tree. Replaying under a different fingerprint would desynchronize the
  // trail, so replay applies these and resume rejects mismatches.
  std::uint32_t stale_read_bound = 3;
  std::uint64_t max_steps = 20000;
  bool strengthen_to_sc = false;
  bool enable_sleep_sets = true;

  std::vector<Choice> choices;

  // Copies the fingerprint fields from / into an engine Config.
  void fingerprint_from(const Config& cfg);
  void apply_fingerprint(Config* cfg) const;
  // "" when `cfg` matches this fingerprint; otherwise a human-readable
  // description of the first mismatch.
  [[nodiscard]] std::string fingerprint_mismatch(const Config& cfg) const;
};

// Serialization. parse_trail accepts exactly render_trail's output (plus
// comments/blank lines) and rejects truncated, corrupted, or
// version-mismatched input with an actionable message naming the line.
[[nodiscard]] std::string render_trail(const TrailFile& t);
bool parse_trail(const std::string& text, TrailFile* out, std::string* err);

// File I/O. Writing is atomic (write to "<path>.tmp", then rename), so a
// crash mid-write never leaves a torn .trail behind.
bool write_trail_file(const std::string& path, const TrailFile& t,
                      std::string* err);
bool load_trail_file(const std::string& path, TrailFile* out,
                     std::string* err);

// Shared text-file plumbing (also used by mc/checkpoint.cc).
bool write_text_file_atomic(const std::string& path, const std::string& text,
                            std::string* err);
bool read_text_file(const std::string& path, std::string* out,
                    std::string* err);

// Renders the choices-only body ("S 1/2\n..."): shared with the checkpoint
// format, which embeds the same trail section.
[[nodiscard]] std::string render_choices(const std::vector<Choice>& v);
// Parses `n` choice lines starting at lines[*idx]; advances *idx past them.
bool parse_choices(const std::vector<std::string>& lines, std::size_t* idx,
                   std::size_t n, std::vector<Choice>* out, std::string* err);

}  // namespace cds::mc

#endif  // CDS_MC_TRACE_H
