// Incremental consistency recorder for reads-from equivalence classes.
//
// Under ExploreMode::kRf every completed execution is the representative of
// one reads-from class. The operational construction makes representatives
// consistent by construction — every constraint edge recorded below points
// from an earlier-executed event to a later-executed one — so this checker
// is defense in depth: it re-derives the class's ordering constraints
// (program order, reads-from, per-location modification order, and the
// global SC order) from the events the engine feeds it and verifies at
// execution end that they admit a linearization (Kahn toposort). A cycle
// means the engine produced a representative whose recorded constraints are
// unsatisfiable — an engine bug, reported as kEngineFatal so the execution
// is discarded without poisoning the verdict.
//
// Deliberately NOT included: from-read (fr) edges. po ∪ rf ∪ mo ∪ fr
// acyclicity is sequential consistency, which C/C++11 relaxed executions
// legitimately violate (store buffering: both threads read 0 — the fr+po
// cycle is an allowed outcome, not an inconsistency).
#ifndef CDS_MC_RF_CONSISTENCY_H
#define CDS_MC_RF_CONSISTENCY_H

#include <cstdint>
#include <string>
#include <vector>

namespace cds::mc {

class RfConsistencyChecker {
 public:
  // Clears all recorded events and edges (call per execution).
  void reset();

  // A store appended message `ts` to `loc` (mo edge from the location's
  // previous message; ts 0 is the init pseudo-store, never reported here).
  void on_write(int tid, std::uint32_t loc, std::uint32_t ts, bool seq_cst);
  // A load (or failed CAS, or the read half of an RMW) observed message
  // `ts` of `loc` (rf edge from that message's write event).
  void on_read(int tid, std::uint32_t loc, std::uint32_t ts, bool seq_cst);
  // A seq_cst fence (sc edge from the previous SC event).
  void on_fence(int tid);

  // True iff the recorded constraint graph is acyclic, i.e. the class's
  // constraints admit a linearization. On failure `why` names the residue.
  [[nodiscard]] bool validate(std::string* why) const;

  [[nodiscard]] std::size_t event_count() const { return tid_of_.size(); }
  [[nodiscard]] std::size_t edge_count() const { return edges_.size(); }

 private:
  struct Edge {
    std::uint32_t from;
    std::uint32_t to;
  };

  std::uint32_t new_event(int tid, bool seq_cst);
  void add_edge(std::uint32_t from, std::uint32_t to);

  // Event 0 is the shared init pseudo-store (mo-before every location's
  // first real write, rf source for loads that observe initial values).
  std::vector<std::int32_t> tid_of_;
  std::vector<Edge> edges_;
  // last_of_thread_[tid] = most recent event of tid, +1 (0 = none yet).
  std::vector<std::uint32_t> last_of_thread_;
  // writes_at_[loc][ts] = event id of the store that produced message ts.
  std::vector<std::vector<std::uint32_t>> writes_at_;
  std::uint32_t last_sc_ = 0;  // most recent SC event, +1 (0 = none yet)
};

}  // namespace cds::mc

#endif  // CDS_MC_RF_CONSISTENCY_H
