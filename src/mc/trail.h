// DFS trail over non-deterministic choice points.
//
// The explorer is stateless in CDSChecker's sense: every execution re-runs
// the test body from scratch, replaying the recorded prefix of choices and
// taking the first untried alternative at the deepest non-exhausted choice
// point. Because executions are deterministic functions of their choice
// sequence, replaying a prefix always reaches the same choice points with
// the same alternative counts (checked in debug builds).
#ifndef CDS_MC_TRAIL_H
#define CDS_MC_TRAIL_H

#include <cassert>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "support/rng.h"

namespace cds::mc {

enum class ChoiceKind : std::uint8_t {
  kSchedule,   // which enabled thread performs the next visible operation
  kReadsFrom,  // which eligible message a load observes
};

struct Choice {
  ChoiceKind kind;
  std::uint16_t chosen;
  std::uint16_t num;
};

// Mixed-radix progress estimate: the fraction of the DFS tree strictly
// before `trail` (digit i contributes chosen_i with base num_i). Evaluated
// Horner-style from the deepest digit up — each step computes
// (chosen + f) / num with f in [0, 1], so deep or wide trails neither
// underflow a running scale factor to zero (the old forward accumulation
// saturated past ~1000 digits) nor overshoot: every step is monotone in f
// and bounded by 1, which also makes the estimate non-decreasing across
// Trail::advance() in floating point, not just in exact arithmetic. The
// result is clamped to [0, 1].
[[nodiscard]] inline double frontier_fraction_of(
    const std::vector<Choice>& trail) {
  double frac = 0.0;
  for (std::size_t i = trail.size(); i-- > 0;) {
    frac = (static_cast<double>(trail[i].chosen) + frac) /
           static_cast<double>(trail[i].num);
  }
  if (frac < 0.0) return 0.0;
  if (frac > 1.0) return 1.0;
  return frac;
}

class Trail {
 public:
  // DFS enumerates the tree systematically; random is the fail-safe
  // sampling mode after a budget exhausts — fresh choices are drawn from
  // the RNG and each execution starts from an empty trail. Either way the
  // choice sequence is recorded, so current_trail()/replay() keep working
  // for sampled executions.
  enum class Mode : std::uint8_t { kDfs, kRandom };

  void reset_all() {
    v_.clear();
    pos_ = 0;
    pinned_ = 0;
    mode_ = Mode::kDfs;
    strict_ = false;
    divergence_.clear();
  }

  void begin_execution() {
    // Random mode redraws every unpinned choice each execution; a pinned
    // prefix survives so sampling stays confined to its subtree.
    if (mode_ == Mode::kRandom) v_.resize(pinned_);
    pos_ = 0;
  }

  // Pin the first `n` recorded choices: advance() will neither flip nor pop
  // them, so DFS is restricted to the subtree below that prefix and reports
  // exhaustion once every continuation of the prefix has been explored.
  // This is how parallel workers each own a disjoint shard of the tree.
  void set_pinned(std::size_t n) {
    assert(n <= v_.size());
    pinned_ = n;
  }
  [[nodiscard]] std::size_t pinned() const { return pinned_; }

  void set_mode(Mode m, support::Xorshift64* rng = nullptr) {
    mode_ = m;
    rng_ = rng;
    assert(mode_ != Mode::kRandom || rng_ != nullptr);
  }
  [[nodiscard]] Mode mode() const { return mode_; }

  // A choice point whose alternative count does not fit the uint16 Choice
  // encoding cannot be recorded faithfully; truncating would silently
  // explore the wrong tree (release builds used to do exactly that). The
  // handler is expected not to return (the engine routes it to
  // engine_fatal, failing only the offending execution); without one the
  // process aborts with a diagnostic.
  using OverflowHandler = void (*)(void* ctx, std::uint32_t num);
  void set_overflow_handler(OverflowHandler fn, void* ctx) {
    overflow_ = fn;
    overflow_ctx_ = ctx;
  }

  // Resolve a choice point with `num` alternatives; returns the index to
  // take. Choice points with a single alternative are not recorded.
  std::uint32_t choose(ChoiceKind kind, std::uint32_t num) {
    if (num == 0 || num >= 0x10000) {
      if (overflow_ != nullptr) overflow_(overflow_ctx_, num);
      std::fprintf(stderr,
                   "trail: %s choice fan-out %u outside the recordable range "
                   "[1, 65535]\n",
                   kind == ChoiceKind::kSchedule ? "schedule" : "reads-from",
                   num);
      std::abort();
    }
    if (num == 1) return 0;
    if (pos_ < v_.size()) {
      const Choice& c = v_[pos_];
      if (strict_ && (c.kind != kind || c.num != num)) {
        note_divergence("choice " + std::to_string(pos_) + ": trail recorded " +
                        describe(c.kind, c.num) + " but the execution reached " +
                        describe(kind, num));
        ++pos_;
        // Clamp so the replay can keep going and report at the end.
        return c.chosen < num ? c.chosen : num - 1;
      }
      assert(c.kind == kind && c.num == num &&
             "non-deterministic replay: test bodies must be pure functions "
             "of the trail");
      ++pos_;
      return c.chosen;
    }
    if (strict_) {
      // A strictly replayed trail covers a whole execution (trails are
      // captured at the execution's end or its crash/violation point), so
      // running past its end means the replay diverged.
      note_divergence("execution requests choice " + std::to_string(pos_) +
                      " past the end of the trail (" +
                      std::to_string(v_.size()) + " recorded choices)");
    }
    std::uint16_t pick =
        mode_ == Mode::kRandom
            ? static_cast<std::uint16_t>(rng_->below(num))
            : 0;
    v_.push_back(Choice{kind, pick, static_cast<std::uint16_t>(num)});
    ++pos_;
    return pick;
  }

  // Move to the next DFS leaf. Returns false when the tree (or, with a
  // pinned prefix, the pinned subtree) is exhausted.
  bool advance() {
    while (v_.size() > pinned_ && v_.back().chosen + 1u >= v_.back().num) {
      v_.pop_back();
    }
    if (v_.size() <= pinned_) return false;
    ++v_.back().chosen;
    return true;
  }

  [[nodiscard]] std::size_t depth() const { return v_.size(); }
  [[nodiscard]] const std::vector<Choice>& raw() const { return v_; }

  // The prefix the current execution has actually consumed. Mid-execution
  // this can be shorter than raw(): after advance(), the vector still
  // holds the tail inherited from the previous execution, which the
  // current one has not reached yet. Violation repros must capture only
  // the consumed prefix, or their strict replay would spuriously diverge.
  [[nodiscard]] std::vector<Choice> consumed() const {
    return std::vector<Choice>(v_.begin(),
                               v_.begin() + static_cast<std::ptrdiff_t>(pos_));
  }

  // Restore a previously captured trail (used to replay a violating
  // execution for diagnostics, or to resume a checkpointed DFS). Replay is
  // a pure prefix walk, so DFS mode. With `strict`, the debug-build
  // determinism assertion is promoted to a runtime check: any mismatch
  // between the recorded choices and the choice points the execution
  // actually reaches is recorded (see replay_diverged()) instead of
  // asserting, so release-build replays of stale or corrupted trails fail
  // with a diagnostic rather than silently exploring a different execution.
  void restore(std::vector<Choice> saved, bool strict = false) {
    v_ = std::move(saved);
    pos_ = 0;
    pinned_ = 0;  // callers pin after restoring, if sharding
    mode_ = Mode::kDfs;
    strict_ = strict;
    divergence_.clear();
  }

  [[nodiscard]] bool replay_diverged() const { return !divergence_.empty(); }
  [[nodiscard]] const std::string& divergence() const { return divergence_; }
  // True when the replayed execution consumed every recorded choice.
  [[nodiscard]] bool fully_consumed() const { return pos_ >= v_.size(); }

 private:
  [[nodiscard]] static std::string describe(ChoiceKind k, std::uint32_t num) {
    return std::string(k == ChoiceKind::kSchedule ? "schedule" : "reads-from") +
           "/" + std::to_string(num);
  }
  void note_divergence(std::string what) {
    if (divergence_.empty()) divergence_ = std::move(what);
  }

  OverflowHandler overflow_ = nullptr;
  void* overflow_ctx_ = nullptr;

  std::vector<Choice> v_;
  std::size_t pos_ = 0;
  std::size_t pinned_ = 0;
  Mode mode_ = Mode::kDfs;
  support::Xorshift64* rng_ = nullptr;
  bool strict_ = false;
  std::string divergence_;
};

}  // namespace cds::mc

#endif  // CDS_MC_TRAIL_H
