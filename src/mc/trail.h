// DFS trail over non-deterministic choice points.
//
// The explorer is stateless in CDSChecker's sense: every execution re-runs
// the test body from scratch, replaying the recorded prefix of choices and
// taking the first untried alternative at the deepest non-exhausted choice
// point. Because executions are deterministic functions of their choice
// sequence, replaying a prefix always reaches the same choice points with
// the same alternative counts (checked in debug builds).
#ifndef CDS_MC_TRAIL_H
#define CDS_MC_TRAIL_H

#include <cassert>
#include <cstdint>
#include <vector>

#include "support/rng.h"

namespace cds::mc {

enum class ChoiceKind : std::uint8_t {
  kSchedule,   // which enabled thread performs the next visible operation
  kReadsFrom,  // which eligible message a load observes
};

struct Choice {
  ChoiceKind kind;
  std::uint16_t chosen;
  std::uint16_t num;
};

class Trail {
 public:
  // DFS enumerates the tree systematically; random is the fail-safe
  // sampling mode after a budget exhausts — fresh choices are drawn from
  // the RNG and each execution starts from an empty trail. Either way the
  // choice sequence is recorded, so current_trail()/replay() keep working
  // for sampled executions.
  enum class Mode : std::uint8_t { kDfs, kRandom };

  void reset_all() {
    v_.clear();
    pos_ = 0;
    mode_ = Mode::kDfs;
  }

  void begin_execution() {
    if (mode_ == Mode::kRandom) v_.clear();
    pos_ = 0;
  }

  void set_mode(Mode m, support::Xorshift64* rng = nullptr) {
    mode_ = m;
    rng_ = rng;
    assert(mode_ != Mode::kRandom || rng_ != nullptr);
  }
  [[nodiscard]] Mode mode() const { return mode_; }

  // Resolve a choice point with `num` alternatives; returns the index to
  // take. Choice points with a single alternative are not recorded.
  std::uint32_t choose(ChoiceKind kind, std::uint32_t num) {
    assert(num >= 1 && num < 0x10000);
    if (num == 1) return 0;
    if (pos_ < v_.size()) {
      const Choice& c = v_[pos_];
      assert(c.kind == kind && c.num == num &&
             "non-deterministic replay: test bodies must be pure functions "
             "of the trail");
      ++pos_;
      return c.chosen;
    }
    std::uint16_t pick =
        mode_ == Mode::kRandom
            ? static_cast<std::uint16_t>(rng_->below(num))
            : 0;
    v_.push_back(Choice{kind, pick, static_cast<std::uint16_t>(num)});
    ++pos_;
    return pick;
  }

  // Move to the next DFS leaf. Returns false when the tree is exhausted.
  bool advance() {
    while (!v_.empty() && v_.back().chosen + 1u >= v_.back().num) v_.pop_back();
    if (v_.empty()) return false;
    ++v_.back().chosen;
    return true;
  }

  [[nodiscard]] std::size_t depth() const { return v_.size(); }
  [[nodiscard]] const std::vector<Choice>& raw() const { return v_; }

  // Restore a previously captured trail (used to replay a violating
  // execution for diagnostics). Replay is a pure prefix walk, so DFS mode.
  void restore(std::vector<Choice> saved) {
    v_ = std::move(saved);
    pos_ = 0;
    mode_ = Mode::kDfs;
  }

 private:
  std::vector<Choice> v_;
  std::size_t pos_ = 0;
  Mode mode_ = Mode::kDfs;
  support::Xorshift64* rng_ = nullptr;
};

}  // namespace cds::mc

#endif  // CDS_MC_TRAIL_H
