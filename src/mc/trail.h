// DFS trail over non-deterministic choice points.
//
// The explorer is stateless in CDSChecker's sense: every execution re-runs
// the test body from scratch, replaying the recorded prefix of choices and
// taking the first untried alternative at the deepest non-exhausted choice
// point. Because executions are deterministic functions of their choice
// sequence, replaying a prefix always reaches the same choice points with
// the same alternative counts (checked in debug builds).
#ifndef CDS_MC_TRAIL_H
#define CDS_MC_TRAIL_H

#include <cassert>
#include <cstdint>
#include <vector>

namespace cds::mc {

enum class ChoiceKind : std::uint8_t {
  kSchedule,   // which enabled thread performs the next visible operation
  kReadsFrom,  // which eligible message a load observes
};

struct Choice {
  ChoiceKind kind;
  std::uint16_t chosen;
  std::uint16_t num;
};

class Trail {
 public:
  void reset_all() {
    v_.clear();
    pos_ = 0;
  }

  void begin_execution() { pos_ = 0; }

  // Resolve a choice point with `num` alternatives; returns the index to
  // take. Choice points with a single alternative are not recorded.
  std::uint32_t choose(ChoiceKind kind, std::uint32_t num) {
    assert(num >= 1 && num < 0x10000);
    if (num == 1) return 0;
    if (pos_ < v_.size()) {
      const Choice& c = v_[pos_];
      assert(c.kind == kind && c.num == num &&
             "non-deterministic replay: test bodies must be pure functions "
             "of the trail");
      ++pos_;
      return c.chosen;
    }
    v_.push_back(Choice{kind, 0, static_cast<std::uint16_t>(num)});
    ++pos_;
    return 0;
  }

  // Move to the next DFS leaf. Returns false when the tree is exhausted.
  bool advance() {
    while (!v_.empty() && v_.back().chosen + 1u >= v_.back().num) v_.pop_back();
    if (v_.empty()) return false;
    ++v_.back().chosen;
    return true;
  }

  [[nodiscard]] std::size_t depth() const { return v_.size(); }
  [[nodiscard]] const std::vector<Choice>& raw() const { return v_; }

  // Restore a previously captured trail (used to replay a violating
  // execution for diagnostics).
  void restore(std::vector<Choice> saved) {
    v_ = std::move(saved);
    pos_ = 0;
  }

 private:
  std::vector<Choice> v_;
  std::size_t pos_ = 0;
};

}  // namespace cds::mc

#endif  // CDS_MC_TRAIL_H
