#include "mc/rf_consistency.h"

#include <cassert>

namespace cds::mc {

void RfConsistencyChecker::reset() {
  tid_of_.clear();
  tid_of_.push_back(-1);  // event 0: the shared init pseudo-store
  edges_.clear();
  last_of_thread_.clear();
  writes_at_.clear();
  last_sc_ = 0;
}

std::uint32_t RfConsistencyChecker::new_event(int tid, bool seq_cst) {
  auto id = static_cast<std::uint32_t>(tid_of_.size());
  tid_of_.push_back(tid);
  auto u = static_cast<std::size_t>(tid);
  if (u >= last_of_thread_.size()) last_of_thread_.resize(u + 1, 0);
  if (last_of_thread_[u] != 0) add_edge(last_of_thread_[u] - 1, id);  // po
  last_of_thread_[u] = id + 1;
  if (seq_cst) {
    if (last_sc_ != 0) add_edge(last_sc_ - 1, id);  // sc total order
    last_sc_ = id + 1;
  }
  return id;
}

void RfConsistencyChecker::add_edge(std::uint32_t from, std::uint32_t to) {
  edges_.push_back(Edge{from, to});
}

void RfConsistencyChecker::on_write(int tid, std::uint32_t loc,
                                    std::uint32_t ts, bool seq_cst) {
  std::uint32_t id = new_event(tid, seq_cst);
  if (loc >= writes_at_.size()) writes_at_.resize(loc + 1);
  std::vector<std::uint32_t>& w = writes_at_[loc];
  if (w.empty()) w.push_back(0);  // message 0: init pseudo-store, event 0
  assert(ts == w.size() && "stores must arrive in modification order");
  (void)ts;
  add_edge(w.back(), id);  // mo: previous message -> this one
  w.push_back(id);
}

void RfConsistencyChecker::on_read(int tid, std::uint32_t loc,
                                   std::uint32_t ts, bool seq_cst) {
  std::uint32_t id = new_event(tid, seq_cst);
  if (loc >= writes_at_.size()) writes_at_.resize(loc + 1);
  std::vector<std::uint32_t>& w = writes_at_[loc];
  if (w.empty()) w.push_back(0);
  assert(ts < w.size() && "read observes a message that was never recorded");
  add_edge(w[ts], id);  // rf: the observed write -> this read
}

void RfConsistencyChecker::on_fence(int tid) { (void)new_event(tid, true); }

bool RfConsistencyChecker::validate(std::string* why) const {
  const auto n = static_cast<std::uint32_t>(tid_of_.size());
  std::vector<std::uint32_t> indegree(n, 0);
  std::vector<std::uint32_t> head(n, 0xffffffffu);
  std::vector<std::uint32_t> next(edges_.size(), 0xffffffffu);
  for (std::size_t i = 0; i < edges_.size(); ++i) {
    ++indegree[edges_[i].to];
    next[i] = head[edges_[i].from];
    head[edges_[i].from] = static_cast<std::uint32_t>(i);
  }
  std::vector<std::uint32_t> ready;
  ready.reserve(n);
  for (std::uint32_t v = 0; v < n; ++v) {
    if (indegree[v] == 0) ready.push_back(v);
  }
  std::uint32_t ordered = 0;
  while (!ready.empty()) {
    std::uint32_t v = ready.back();
    ready.pop_back();
    ++ordered;
    for (std::uint32_t e = head[v]; e != 0xffffffffu; e = next[e]) {
      if (--indegree[edges_[e].to] == 0) ready.push_back(edges_[e].to);
    }
  }
  if (ordered == n) return true;
  if (why != nullptr) {
    *why = "po/rf/mo/sc constraint cycle through " +
           std::to_string(n - ordered) + " of " + std::to_string(n) +
           " events";
  }
  return false;
}

}  // namespace cds::mc
