// Modeled std::atomic. Data structures under test are written against this
// type exactly as they would be against <atomic>; every operation routes
// through the engine, which explores the behaviors the C/C++11 memory model
// allows for the chosen memory_order arguments.
#ifndef CDS_MC_ATOMIC_H
#define CDS_MC_ATOMIC_H

#include <cstdint>
#include <cstring>
#include <type_traits>

#include "mc/engine.h"
#include "mc/memory_order.h"

namespace cds::mc {

namespace detail {

template <typename T>
constexpr bool kAtomicable =
    std::is_trivially_copyable_v<T> && sizeof(T) <= sizeof(std::uint64_t);

template <typename T>
std::uint64_t to_u64(T v) {
  static_assert(kAtomicable<T>);
  std::uint64_t out = 0;
  std::memcpy(&out, &v, sizeof(T));
  return out;
}

template <typename T>
T from_u64(std::uint64_t v) {
  static_assert(kAtomicable<T>);
  T out{};
  std::memcpy(&out, &v, sizeof(T));
  return out;
}

}  // namespace detail

template <typename T>
class Atomic {
 public:
  // Default construction leaves the location uninitialized: a racing load
  // that observes the pre-init value triggers the built-in
  // uninitialized-load check, exactly as in CDSChecker.
  explicit Atomic(const char* name = "atomic")
      : loc_(harness::Backend::current()->new_location(name, /*initialized=*/false, 0)) {}

  // Value construction models atomic_init / non-atomic initialization.
  Atomic(T init, const char* name = "atomic")
      : loc_(harness::Backend::current()->new_location(name, /*initialized=*/true,
                                             detail::to_u64(init))) {}

  Atomic(const Atomic&) = delete;
  Atomic& operator=(const Atomic&) = delete;

  // Orders default to seq_cst, mirroring std::atomic.
  [[nodiscard]] T load(MemoryOrder o = MemoryOrder::seq_cst) const {
    return detail::from_u64<T>(harness::Backend::current()->atomic_load(loc_, o));
  }

  void store(T v, MemoryOrder o = MemoryOrder::seq_cst) {
    harness::Backend::current()->atomic_store(loc_, detail::to_u64(v), o);
  }

  // Late (non-atomic) initialization, for fields whose init is published by
  // a later release operation — models atomic_init after construction.
  void init(T v) {
    harness::Backend::current()->atomic_store(loc_, detail::to_u64(v), MemoryOrder::relaxed);
  }

  T exchange(T v, MemoryOrder o) {
    return detail::from_u64<T>(
        harness::Backend::current()->atomic_exchange(loc_, detail::to_u64(v), o));
  }

  bool compare_exchange_strong(T& expected, T desired, MemoryOrder success,
                               MemoryOrder failure) {
    std::uint64_t e = detail::to_u64(expected);
    bool ok = harness::Backend::current()->atomic_cas(loc_, e, detail::to_u64(desired),
                                            success, failure);
    if (!ok) expected = detail::from_u64<T>(e);
    return ok;
  }

  bool compare_exchange_strong(T& expected, T desired, MemoryOrder o) {
    return compare_exchange_strong(expected, desired, o, for_load(o));
  }

  // Modeled as strong: the checker explores failure through genuine
  // stale-value reads rather than spurious hardware failure (CDSChecker
  // does the same); algorithms correct with weak CAS remain correct.
  bool compare_exchange_weak(T& expected, T desired, MemoryOrder success,
                             MemoryOrder failure) {
    return compare_exchange_strong(expected, desired, success, failure);
  }

  T fetch_add(T v, MemoryOrder o)
    requires std::is_integral_v<T>
  {
    return detail::from_u64<T>(harness::Backend::current()->atomic_rmw(
        loc_, o,
        [](std::uint64_t a, std::uint64_t b) {
          return detail::to_u64(static_cast<T>(detail::from_u64<T>(a) +
                                               detail::from_u64<T>(b)));
        },
        detail::to_u64(v)));
  }

  T fetch_sub(T v, MemoryOrder o)
    requires std::is_integral_v<T>
  {
    return detail::from_u64<T>(harness::Backend::current()->atomic_rmw(
        loc_, o,
        [](std::uint64_t a, std::uint64_t b) {
          return detail::to_u64(static_cast<T>(detail::from_u64<T>(a) -
                                               detail::from_u64<T>(b)));
        },
        detail::to_u64(v)));
  }

  T fetch_or(T v, MemoryOrder o)
    requires std::is_integral_v<T>
  {
    return detail::from_u64<T>(harness::Backend::current()->atomic_rmw(
        loc_, o,
        [](std::uint64_t a, std::uint64_t b) {
          return detail::to_u64(static_cast<T>(detail::from_u64<T>(a) |
                                               detail::from_u64<T>(b)));
        },
        detail::to_u64(v)));
  }

  T fetch_xor(T v, MemoryOrder o)
    requires std::is_integral_v<T>
  {
    return detail::from_u64<T>(harness::Backend::current()->atomic_rmw(
        loc_, o,
        [](std::uint64_t a, std::uint64_t b) {
          return detail::to_u64(static_cast<T>(detail::from_u64<T>(a) ^
                                               detail::from_u64<T>(b)));
        },
        detail::to_u64(v)));
  }

  T fetch_and(T v, MemoryOrder o)
    requires std::is_integral_v<T>
  {
    return detail::from_u64<T>(harness::Backend::current()->atomic_rmw(
        loc_, o,
        [](std::uint64_t a, std::uint64_t b) {
          return detail::to_u64(static_cast<T>(detail::from_u64<T>(a) &
                                               detail::from_u64<T>(b)));
        },
        detail::to_u64(v)));
  }

 private:
  std::uint32_t loc_;
};

inline void thread_fence(MemoryOrder o) {
  harness::Backend::current()->atomic_thread_fence(o);
}

}  // namespace cds::mc

#endif  // CDS_MC_ATOMIC_H
