// Reads-from equivalence exploration support (ExploreMode::kRf).
//
// In rf mode the DFS branches on reads-from assignments instead of every
// scheduler choice point. Non-seq_cst atomic loads never enter schedule
// branching: the scheduler runs them greedily at their earliest placement
// (right after thread-local operations, before any branched pick), and each
// such load's choice point gains one trailing "wait for the next
// same-location write" alternative that stands in for every later
// placement. A thread that takes the wait alternative blocks
// (ThreadStatus::kBlockedRead) until a store appends a new message to the
// location, then re-picks among the messages newer than the ones it
// declined. Executions whose wait choices are never satisfied are
// infeasible rf classes — pruned (Outcome::kPrunedInfeasibleRf), never
// reported as deadlocks, because every wait alternative has a non-wait
// sibling that covers the real continuations.
//
// This class owns the per-execution wait bookkeeping; the engine owns the
// greedy scheduling itself and the class counters (see DESIGN.md
// "Reads-from equivalence exploration" for the soundness argument).
#ifndef CDS_MC_RF_EXPLORE_H
#define CDS_MC_RF_EXPLORE_H

#include <cstdint>
#include <vector>

#include "mc/memory_order.h"

namespace cds::mc {

// True for loads the rf mode defers (greedy placement + wait alternative):
// everything below seq_cst. SC loads keep full schedule branching because
// they read and advance the global SC floors — their placement is visible
// to other threads, so greedy placement would lose behaviors.
[[nodiscard]] inline bool rf_defers_load(MemoryOrder o) {
  return !is_seq_cst(o);
}

class RfExplorer {
 public:
  void reset_execution() { waits_.clear(); }

  // `tid` took the wait alternative after declining every message up to
  // and including `last_ts`. Re-arms (updates last_ts) if already waiting.
  void begin_wait(int tid, std::uint32_t loc, std::uint32_t last_ts);

  // A store appended a message to `loc`: appends every thread waiting on
  // that location to `woken` (the engine flips them back to runnable;
  // their wait record survives so the re-pick is floor-restricted).
  void notify_store(std::uint32_t loc, std::vector<int>& woken) const;

  [[nodiscard]] bool waiting(int tid) const;
  // Smallest message timestamp `tid` may still observe: one past the
  // newest message it declined by waiting.
  [[nodiscard]] std::uint32_t wait_floor(int tid) const;
  // The waited-on load resolved to a real message; drop the record.
  void end_wait(int tid);

  [[nodiscard]] bool any_waiting() const { return !waits_.empty(); }

 private:
  struct Wait {
    int tid;
    std::uint32_t loc;
    std::uint32_t last_ts;  // newest message declined so far
  };
  std::vector<Wait> waits_;
};

}  // namespace cds::mc

#endif  // CDS_MC_RF_EXPLORE_H
