// The exploration engine: an exhaustive, stateless model checker for the
// C/C++11 memory model (the CDSChecker-equivalent substrate of the paper).
//
// A test body is a function over an Exec facade; it constructs the data
// structure under test, spawns modeled threads, and joins them. The engine
// re-runs the body once per explored execution, enumerating by DFS:
//   - the schedule: which enabled thread performs each visible operation,
//   - reads-from: which coherence-eligible message each atomic load reads.
// Per-thread views make stale reads, release/acquire synchronization,
// release sequences, fences, RMW atomicity, and SC constraints behave as
// the C/C++11 model allows (see DESIGN.md for the exact operational rules
// and their deviations).
#ifndef CDS_MC_ENGINE_H
#define CDS_MC_ENGINE_H

#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <new>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "fiber/fiber.h"
#include "harness/backend.h"
#include "mc/checkpoint.h"
#include "mc/config.h"
#include "mc/location.h"
#include "mc/memory_order.h"
#include "mc/rf_consistency.h"
#include "mc/rf_explore.h"
#include "mc/stats.h"
#include "mc/thread_state.h"
#include "mc/trail.h"
#include "mc/violation.h"
#include "obs/metrics.h"
#include "obs/progress.h"
#include "support/arena.h"
#include "support/rng.h"
#include "support/vector_clock.h"

namespace cds::mc {

class Engine;
class Exec;

// Hook for the specification layer (and tests) into the exploration loop.
class ExecutionListener {
 public:
  virtual ~ExecutionListener() = default;
  virtual void on_execution_begin(Engine&) {}
  // Called for every feasible execution that completed without a built-in
  // violation. Return false to stop exploring.
  virtual bool on_execution_complete(Engine&) { return true; }
  // Called while the engine assembles a checkpoint: append (or overwrite)
  // any counters this layer needs to survive a kill+resume. The engine
  // round-trips them opaquely; restore them from the Checkpoint's `extra`
  // on resume.
  virtual void on_checkpoint(
      std::vector<std::pair<std::string, std::uint64_t>>&) {}
};

struct TraceEvent {
  enum class Kind : std::uint8_t {
    kLoad, kStore, kRmw, kCasFail, kFence,
    kSpawn, kJoin, kYield, kLock, kUnlock, kThreadEnd,
  };
  static constexpr std::uint32_t kNoLoc = 0xffffffffu;

  Kind kind;
  std::int16_t thread;
  MemoryOrder order;
  std::uint32_t loc;
  std::uint64_t value;
};

[[nodiscard]] const char* to_string(TraceEvent::Kind k);

// Shadow state for a plain (non-atomic) shared variable; drives the
// FastTrack-style built-in race detector.
struct RaceShadow {
  std::int32_t w_thread = -1;
  std::uint32_t w_pos = 0;
  support::VectorClock reads;
  const char* name = "var";
};

// Scheduler-aware mutex state (see mc/sync.h for the user-facing wrapper).
struct MutexState {
  std::int32_t holder = -1;
  support::Timestamps release_ts;
  const char* name = "mutex";
};

using TestFn = std::function<void(Exec&)>;

class Engine : public harness::Backend {
 public:
  explicit Engine(Config cfg = {});
  ~Engine() override;
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  // Exhaustively explores `test`. Reentrant per Engine object (stats are
  // per call); not safe to run two Engines on one OS thread concurrently.
  ExplorationStats explore(const TestFn& test);

  void set_listener(ExecutionListener* l) { listener_ = l; }

  // Resume a previous exploration from a loaded checkpoint (see
  // mc/checkpoint.h). Must be called before explore(); the caller is
  // responsible for checking Checkpoint::fingerprint_mismatch first. A
  // Phase::kStart checkpoint is treated as a fresh exploration.
  void set_resume(Checkpoint cp) { resume_ = std::move(cp); }

  // Template for checkpoints this engine writes: its `extra` entries (e.g.
  // the harness's accumulated prior-test totals) are carried into every
  // checkpoint file, ahead of whatever the listener's on_checkpoint adds.
  void set_checkpoint_base(Checkpoint cp) { cp_base_ = std::move(cp); }

  // Subtree-restriction mode (parallel sharding): explore() pins `prefix`
  // at the bottom of the trail and enumerates only the executions that
  // extend it. Because executions are deterministic functions of their
  // choice sequence, the subtrees of a set of disjoint prefixes partition
  // the full DFS tree; stats.exhausted then means "this subtree is
  // exhausted". Must be set before explore(); incompatible with
  // set_resume(). Pass an empty prefix to clear.
  void set_subtree(std::vector<Choice> prefix) { subtree_ = std::move(prefix); }

  // --- introspection (valid while an execution is live or being checked) --
  [[nodiscard]] int current_thread() const override { return current_; }
  [[nodiscard]] int thread_count() const { return spawned_; }
  [[nodiscard]] const ThreadMMState& mm(int tid) const;
  [[nodiscard]] std::uint64_t execution_index() const { return exec_index_; }
  [[nodiscard]] const std::vector<TraceEvent>& trace() const { return trace_; }
  [[nodiscard]] const Config& config() const { return cfg_; }
  [[nodiscard]] const char* location_name(std::uint32_t loc) const;

  // Observability registry for this engine instance. Layers above (the
  // spec checker, the harness) register their own metrics here so one
  // snapshot covers the whole pipeline; shard probe engines own separate
  // registries, keeping worker snapshots uncontaminated. Counter and
  // histogram entries are schedule-independent by contract (see
  // obs/metrics.h), so a sharded exhaustive run merges bit-identical to a
  // serial one.
  [[nodiscard]] obs::Registry& metrics() { return obs_; }
  [[nodiscard]] const obs::Registry& metrics() const { return obs_; }

  // Behavior-set extraction (used by the fuzzer's differential oracles):
  // the locations of the execution being checked and the final (latest in
  // modification order) value of each. Valid from an execution listener.
  [[nodiscard]] std::uint32_t location_count() const override {
    return static_cast<std::uint32_t>(locs_.size());
  }
  [[nodiscard]] std::uint64_t location_final_value(
      std::uint32_t loc) const override {
    return locs_[loc].latest().value;
  }

  // Reporting channel shared by built-in checks and the spec layer.
  void report_violation(ViolationKind k, std::string detail) override;

  // Recoverable internal error: records a kEngineFatal diagnostic, fails
  // the *current execution* only, and lets the exploration continue. Must
  // be called from a modeled-thread fiber during an execution (falls back
  // to a process abort when there is no execution to fail). Never returns.
  [[noreturn]] void engine_fatal(std::string detail);
  [[nodiscard]] const std::vector<Violation>& violations() const { return violations_; }
  [[nodiscard]] std::uint64_t violations_total() const { return violations_total_; }
  [[nodiscard]] bool execution_has_builtin_violation() const { return had_builtin_; }

  // Renders the current execution's event trace (diagnostics).
  [[nodiscard]] std::string format_trace() const;

  // Snapshot of the current execution's choice sequence; feed it back to
  // replay() to re-run exactly this execution (e.g. to re-examine a
  // violation with richer tracing).
  [[nodiscard]] std::vector<Choice> current_trail() const { return trail_.raw(); }

  // After explore() returned with stats.preempted (Config::stop_request
  // tripped): the trail of the last execution the DFS explored, including
  // any pinned subtree prefix. Empty otherwise. The unexplored remainder
  // of the (sub)tree is the union of this trail's right-sibling subtrees
  // below the pinned prefix — see mc::split_remaining_frontier.
  [[nodiscard]] const std::vector<Choice>& preempt_frontier() const {
    return preempt_frontier_;
  }
  // Re-runs exactly one execution from a saved choice sequence. With
  // `strict` set (the --replay-trail path), the debug-build determinism
  // assertion is promoted to a runtime check: any divergence between the
  // trail and the execution it drives — a mismatched choice kind or
  // alternative count, running past the end of the trail, or finishing
  // without consuming it — is reported through `divergence` and the call
  // returns false instead of asserting.
  bool replay(const std::vector<Choice>& saved, const TestFn& test,
              bool strict = false, std::string* divergence = nullptr);

  // --- modeled-code API (called from inside test fibers) ---------------
  // Engine driving the calling fiber; null outside explore(). The generic
  // entry point is harness::Backend::current(); this accessor exists for
  // engine-internal callers and tests that need model-only introspection.
  static Engine* current();

  std::uint32_t new_location(const char* name, bool initialized,
                             std::uint64_t init_value) override;
  std::uint64_t atomic_load(std::uint32_t loc, MemoryOrder o) override;
  void atomic_store(std::uint32_t loc, std::uint64_t v, MemoryOrder o) override;
  // Generic RMW: new_value = op(old_value, operand); returns old value.
  std::uint64_t atomic_rmw(std::uint32_t loc, MemoryOrder o,
                           std::uint64_t (*op)(std::uint64_t, std::uint64_t),
                           std::uint64_t operand) override;
  bool atomic_cas(std::uint32_t loc, std::uint64_t& expected,
                  std::uint64_t desired, MemoryOrder success,
                  MemoryOrder failure) override;
  std::uint64_t atomic_exchange(std::uint32_t loc, std::uint64_t v,
                                MemoryOrder o) override;
  void atomic_thread_fence(MemoryOrder o) override;

  void plain_read(RaceShadow& s) override;
  void plain_write(RaceShadow& s) override;

  void mutex_lock(MutexState& m) override;
  void mutex_unlock(MutexState& m) override;

  int spawn_thread(std::function<void()> body) override;
  void join_thread(int tid) override;
  void yield_thread() override;

  support::Arena& arena() { return arena_; }

  // --- harness::Backend surface ----------------------------------------
  [[nodiscard]] const char* backend_name() const override { return "model"; }
  void* allocate(std::size_t bytes, std::size_t align) override {
    return arena_.allocate(bytes, align);
  }
  [[nodiscard]] spec::Recorder* recorder() override;
  [[nodiscard]] spec::OPEvent snapshot_op(int tid) const override;

 private:
  // What a parked thread is about to do; drives the independence-based
  // schedule reduction (two pending operations that commute need no
  // schedule branch — see run_one()).
  struct PendingOp {
    enum class Class : std::uint8_t {
      kInternal,  // spawn/join/yield/acq-rel fence: thread-local effect
      kRead,      // atomic load (incl. failed-CAS read)
      kWrite,     // store / rmw / cas
      kScFence,   // conflicts with every memory op (global SC view)
      kMutex,     // lock/unlock on a specific mutex
    };
    Class cls = Class::kInternal;
    std::uint32_t loc = 0;
    const MutexState* mutex = nullptr;
    // Declared memory order (after any strengthen_to_sc coercion); rf mode
    // uses it to tell deferred (non-seq_cst) loads from branching ones.
    MemoryOrder order = MemoryOrder::relaxed;
  };

  struct Thread {
    std::unique_ptr<fiber::Fiber> fib;
    ThreadMMState mm;
    ThreadStatus status = ThreadStatus::kAbsent;
    int waiting_join = -1;
    const MutexState* waiting_mutex = nullptr;
    std::function<void()> body;
    PendingOp pending;
  };

  // Sleep-set reduction (Godefroid): after a schedule alternative's subtree
  // is explored, that thread sleeps for the sibling subtrees until some
  // dependent (conflicting) operation executes. Prunes redundant
  // interleavings without losing behaviors.
  struct SleepEntry {
    int tid;
    PendingOp op;
  };

  // True iff the two pending operations do not commute (executing them in
  // either order can differ): same-location with a write, same mutex, or
  // an SC fence against any memory operation.
  static bool conflicts(const PendingOp& a, const PendingOp& b);

  void run_one(const TestFn& test);
  void reset_execution_state();
  // Parks the calling fiber at a visible-operation boundary, declaring the
  // operation it is about to perform; returns when the scheduler picks
  // this thread again.
  void park(PendingOp op);
  void block(ThreadStatus why);
  void switch_to_scheduler();
  [[noreturn]] void abandon_execution();
  void thread_exit();
  Thread& cur() { return threads_[static_cast<std::size_t>(current_)]; }
  ThreadMMState& cur_mm() { return cur().mm; }
  void bump_event(int tid);
  void wake_yielded(int except);
  void apply_read_sync(ThreadMMState& t, const Message& m, MemoryOrder o);
  // Appends a store message; shared by store/rmw/cas-success paths.
  // `read_from` is the message an RMW read (nullptr for plain stores).
  void append_store(std::uint32_t loc, std::uint64_t v, MemoryOrder o,
                    bool is_rmw);
  // Resolves which message a load observes (choice point); returns its
  // timestamp index. `exclude_value`/`use_exclude` implement failed-CAS
  // reads, which may only observe messages with value != expected.
  // `min_ts` floors the candidates (rf mode: a woken waiter may only pick
  // among the messages newer than the ones it declined); with `offer_wait`
  // the choice gains one trailing "wait for the next same-location write"
  // alternative, reported through `chose_wait`.
  std::uint32_t pick_read(std::uint32_t loc, MemoryOrder o,
                          std::uint64_t exclude_value, bool use_exclude,
                          bool* has_option, std::uint32_t min_ts,
                          bool offer_wait, bool* chose_wait);
  std::uint32_t next_sc_index() { return ++sc_counter_; }
  void record(TraceEvent::Kind k, MemoryOrder o, std::uint32_t loc,
              std::uint64_t value);

  enum class Outcome : std::uint8_t {
    kRunning, kComplete, kPrunedBound, kPrunedLivelock, kPrunedRedundant,
    kBuiltinViolation, kEngineFatal,
    kCrash,  // test body took a fatal signal; contained, never checkable
    // rf mode: some thread still waits for a same-location write that no
    // remaining thread will perform — the chosen rf assignment names a
    // message that never exists. An infeasible class, not a deadlock:
    // every wait alternative has a non-wait sibling branch covering the
    // real continuations (including real deadlocks).
    kPrunedInfeasibleRf,
  };

  // Fiber fall-through recovery (installed as fiber::Fiber's handler).
  static void on_fiber_fallthrough(fiber::Fiber& f);

  // Budget plumbing. `deadline` is seconds since exploration start
  // (0 = none); returns true when a budget tripped and sets the
  // corresponding hit_*_budget_ flag.
  [[nodiscard]] double seconds_since_start() const;
  [[nodiscard]] std::size_t memory_usage_estimate() const;
  bool check_budgets();
  // Shared tally of one finished execution; updates stats and returns the
  // listener's keep-going decision.
  bool tally_execution(ExplorationStats& stats);

  // Progress heartbeat (see --progress): emits a throttled status line
  // between executions. Only reached when cfg_.progress_interval_seconds
  // armed a meter, so the disabled hot path is one null check.
  void beat_progress(const ExplorationStats& stats, const char* phase);
  // Estimated fraction of the DFS tree strictly before the current trail:
  // the mixed-radix fraction of the trail's chosen/num digits (see
  // frontier_fraction_of in mc/trail.h), made monotone non-decreasing
  // across one explore() via frontier_frac_floor_.
  [[nodiscard]] double frontier_fraction() const;
  // Trail overflow trampoline: routes an unrecordable choice fan-out into
  // engine_fatal, failing only the offending execution.
  static void on_trail_overflow(void* self, std::uint32_t num);

  // Signal-to-verdict containment (see Config::contain_crashes): handlers
  // live for the duration of explore()/replay(); run_one arms a sigsetjmp
  // window around each switch into a test fiber.
  void install_crash_handlers();
  void restore_crash_handlers();
  // Builds the kCrash violation for a fault caught in the armed window and
  // marks the execution's outcome. `sig`/`addr` come from the handler.
  void contain_crash(int sig, const void* addr);

  // Assembles and atomically writes a checkpoint (no-op when
  // cfg_.checkpoint_path is empty); failures warn on stderr and the
  // exploration continues.
  void write_checkpoint(Checkpoint::Phase phase, const ExplorationStats& stats,
                        std::uint64_t last_progress_exec);

  Config cfg_;
  ExecutionListener* listener_ = nullptr;

  fiber::Fiber sched_fiber_;
  std::vector<Thread> threads_;
  int spawned_ = 0;
  int current_ = -1;

  std::vector<Location> locs_;
  support::View sc_view_;      // coherence propagated through seq_cst fences
  std::uint32_t sc_counter_ = 0;

  Trail trail_;
  std::vector<SleepEntry> sleep_;
  // Reads-from equivalence mode (cfg_.explore == ExploreMode::kRf): wait
  // bookkeeping for deferred loads, the per-class constraint cross-check,
  // and a wake scratch list. Under strengthen_to_sc every load is seq_cst,
  // so rf mode degenerates to schedule-equivalent exploration naturally.
  const bool rf_mode_;
  RfExplorer rf_;
  RfConsistencyChecker rf_check_;
  std::vector<int> rf_woken_scratch_;
  // Reads-from candidate scratch, reused across choice points so the hot
  // path never allocates; sized by the visible history span, replacing a
  // fixed cap that silently dropped eligible writes past entry 128.
  std::vector<std::uint32_t> rf_scratch_;
  support::Arena arena_;
  std::vector<TraceEvent> trace_;

  std::uint64_t exec_index_ = 0;
  std::uint64_t steps_ = 0;
  Outcome outcome_ = Outcome::kRunning;
  bool had_builtin_ = false;
  bool abandoned_ = false;
  bool fatal_abandon_ = false;  // abandoned by engine_fatal, not a violation

  std::vector<Violation> violations_;
  std::uint64_t violations_total_ = 0;

  // Budget state (valid during explore()).
  support::Xorshift64 rng_;
  std::chrono::steady_clock::time_point t0_{};
  double active_deadline_ = 0.0;  // seconds since t0_; 0 = no deadline
  bool hit_time_budget_ = false;
  bool hit_memory_budget_ = false;

  // Subtree-restriction prefix; empty = explore the whole tree.
  std::vector<Choice> subtree_;

  // Frontier captured when cfg_.stop_request preempted the DFS.
  std::vector<Choice> preempt_frontier_;

  // Highest frontier_fraction reported so far this explore(): floating-
  // point rounding on deep trails must never make the progress estimate
  // step backwards.
  mutable double frontier_frac_floor_ = 0.0;

  // Checkpoint/resume state.
  std::optional<Checkpoint> resume_;
  Checkpoint cp_base_;
  double resume_elapsed_ = 0.0;  // folded into seconds_since_start()

  // Crash containment state (valid while handlers are installed).
  bool crash_handlers_active_ = false;

  // Observability: the registry plus cached metric pointers (stable for
  // the engine's lifetime) so hot-path bumps are single adds.
  obs::Registry obs_;
  obs::Counter* m_executions_ = nullptr;
  obs::Counter* m_sleep_prunes_ = nullptr;
  obs::Counter* m_rf_choice_points_ = nullptr;
  obs::Counter* m_rf_candidates_ = nullptr;
  obs::Counter* m_sched_choice_points_ = nullptr;
  obs::Counter* m_rf_classes_ = nullptr;
  obs::Counter* m_rf_infeasible_ = nullptr;
  obs::Counter* m_rf_deferred_reads_ = nullptr;
  obs::Counter* m_rf_wait_choices_ = nullptr;
  obs::Histogram* m_trail_depth_ = nullptr;
  obs::Histogram* m_rf_fanout_ = nullptr;
  obs::Gauge* m_mem_peak_ = nullptr;
  obs::Gauge* m_arena_peak_ = nullptr;
  // Heartbeat meter; null unless cfg_.progress_interval_seconds > 0.
  std::unique_ptr<obs::ProgressMeter> progress_;
};

// Facade handed to test bodies. Backend-neutral: the same body runs under
// the model checker and the stress backend unchanged.
class Exec {
 public:
  explicit Exec(harness::Backend& b) : b_(b) {}

  // Spawns a modeled thread; returns its id.
  int spawn(std::function<void()> body) { return b_.spawn_thread(std::move(body)); }
  void join(int tid) { b_.join_thread(tid); }
  // Spin-loop annotation (CDSChecker's thrd_yield): deprioritizes the
  // calling thread until another thread performs a store.
  void yield() { b_.yield_thread(); }

  // Per-execution allocation; memory is recycled between executions, no
  // destructors run. Use for nodes the structure never frees.
  template <typename T, typename... A>
  T* make(A&&... a) {
    return ::new (b_.allocate(sizeof(T), alignof(T))) T(static_cast<A&&>(a)...);
  }

  harness::Backend& backend() { return b_; }

 private:
  harness::Backend& b_;
};

// Convenience wrappers for data-structure internals that do not hold an
// Exec handle (the modeling analogue of thrd_yield / malloc in CDSChecker
// benchmarks).
inline void yield() { harness::Backend::current()->yield_thread(); }

// CDSChecker-style user assertion (the paper's footnote 6: assertions can
// check properties — e.g. of aggregate methods — that the specification
// machinery does not cover). A failure is reported as a violation for the
// current execution; exploration continues (subject to
// stop_on_first_violation).
inline void model_assert(bool cond, const char* what = "model_assert") {
  if (!cond) {
    harness::Backend::current()->report_violation(ViolationKind::kUserAssertion,
                                                  what);
  }
}

template <typename T, typename... A>
T* alloc(A&&... a) {
  return ::new (harness::Backend::current()->allocate(sizeof(T), alignof(T)))
      T(static_cast<A&&>(a)...);
}

}  // namespace cds::mc

#endif  // CDS_MC_ENGINE_H
