#include "mc/rf_explore.h"

#include <cassert>

namespace cds::mc {

void RfExplorer::begin_wait(int tid, std::uint32_t loc, std::uint32_t last_ts) {
  for (Wait& w : waits_) {
    if (w.tid == tid) {
      assert(w.loc == loc && "a thread waits on one location at a time");
      assert(last_ts >= w.last_ts);
      w.last_ts = last_ts;
      return;
    }
  }
  waits_.push_back(Wait{tid, loc, last_ts});
}

void RfExplorer::notify_store(std::uint32_t loc, std::vector<int>& woken) const {
  for (const Wait& w : waits_) {
    if (w.loc == loc) woken.push_back(w.tid);
  }
}

bool RfExplorer::waiting(int tid) const {
  for (const Wait& w : waits_) {
    if (w.tid == tid) return true;
  }
  return false;
}

std::uint32_t RfExplorer::wait_floor(int tid) const {
  for (const Wait& w : waits_) {
    if (w.tid == tid) return w.last_ts + 1;
  }
  assert(false && "wait_floor queried for a thread that is not waiting");
  return 0;
}

void RfExplorer::end_wait(int tid) {
  for (std::size_t i = 0; i < waits_.size(); ++i) {
    if (waits_[i].tid == tid) {
      waits_[i] = waits_.back();
      waits_.pop_back();
      return;
    }
  }
}

}  // namespace cds::mc
