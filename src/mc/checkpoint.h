// Checkpoint/resume for the exploration engine.
//
// Because the explorer is stateless, the entire DFS frontier is the current
// trail: each recorded Choice carries its alternative count, so "where the
// enumeration is" and "what remains" are both implied by one choice
// sequence. A checkpoint is therefore small — the trail, the exploration
// counters, the sampling RNG state, and the elapsed budget — and a resumed
// run converges to the exact stats and verdict of an uninterrupted one.
//
// Files are written atomically (write-to-temp + rename, see mc/trace.h), so
// a SIGKILL or power loss mid-write leaves either the previous complete
// checkpoint or a stray .tmp, never a torn file; the parser still rejects
// truncated/corrupted input cleanly so a damaged file degrades to a fresh
// start instead of a crash.
//
// Format (line-oriented, '#' comments, order fixed):
//   cdsspec-checkpoint v3
//   test msqueue#1
//   test_index 1
//   seed 11400714819323198485
//   phase dfs                       # start | dfs | sampling
//   rng 88172645463325252
//   elapsed 1.250000
//   config stale=3 max_steps=20000 strengthen_sc=0 sleep_sets=1 explore=0
//   stats executions=1000 feasible=940 ... last_progress=1000
//   flags cap=0 time=0 mem=0 watchdog=0 exhausted=0 stopped=0
//   violations 1
//   v data-race 17 0 read of 'head' races with write by T2
//   extra 2
//   x spec.cur.histories_checked 4200
//   x prior.executions 312
//   trail 3
//   S 1/2
//   R 0/3
//   S 0/2
//   end
#ifndef CDS_MC_CHECKPOINT_H
#define CDS_MC_CHECKPOINT_H

#include <string>
#include <utility>
#include <vector>

#include "mc/config.h"
#include "mc/stats.h"
#include "mc/trail.h"
#include "mc/violation.h"

namespace cds::mc {

struct Checkpoint {
  // v3: the exploration mode (--explore schedule|rf) joined the config
  // fingerprint and the stats line gained the rf class counters; a v2
  // checkpoint would resume with those counters silently zeroed.
  // v2: RNG stream change (rejection-sampled Xorshift64::below); resuming a
  // v1 sampling-phase checkpoint would not reproduce the interrupted run.
  static constexpr int kVersion = 3;

  // Where the interrupted run was:
  //   kStart    — about to begin this test from scratch (the harness writes
  //               these between a benchmark's unit tests);
  //   kDfs      — mid-DFS; `trail` is the frontier, resume advances past it;
  //   kSampling — DFS is over (budget/watchdog), mid random-walk phase.
  enum class Phase : std::uint8_t { kStart, kDfs, kSampling };

  std::string test_name;  // fingerprint, e.g. "msqueue#1"
  std::uint64_t test_index = 0;
  std::uint64_t seed = 0;
  Phase phase = Phase::kStart;
  std::uint64_t rng_state = 0;    // sampling RNG mid-stream state
  double elapsed_seconds = 0.0;   // wall time already spent (budget offset)

  // Config fingerprint (same fields as TrailFile): resume rejects a
  // checkpoint recorded under different exploration parameters.
  std::uint32_t stale_read_bound = 3;
  std::uint64_t max_steps = 20000;
  bool strengthen_to_sc = false;
  bool enable_sleep_sets = true;
  ExploreMode explore = ExploreMode::kSchedule;

  // Counters and flags of the current (partial) test. `seconds` and
  // `verdict` are recomputed on resume; the integer fields and budget
  // flags carry over exactly.
  ExplorationStats stats;
  std::uint64_t last_progress_exec = 0;  // watchdog bookkeeping

  // Recorded violation diagnostics (details flattened to one line; their
  // trails are not persisted — the counts in `stats` are what the verdict
  // and detection classification rest on).
  std::vector<Violation> violations;

  // Opaque counters from layers above the engine (the spec checker's
  // stats, the harness's accumulated prior-test totals). Keys contain no
  // whitespace; the engine round-trips them without interpretation.
  std::vector<std::pair<std::string, std::uint64_t>> extra;

  // The DFS frontier (kDfs only; empty otherwise).
  std::vector<Choice> trail;

  void fingerprint_from(const Config& cfg);
  // "" when `cfg` matches; otherwise a description of the first mismatch.
  [[nodiscard]] std::string fingerprint_mismatch(const Config& cfg) const;

  [[nodiscard]] std::uint64_t extra_value(const std::string& key,
                                          std::uint64_t fallback = 0) const;
  void set_extra(const std::string& key, std::uint64_t value);
};

[[nodiscard]] const char* to_string(Checkpoint::Phase p);

// Canonical one-line rendering of the exploration-shaping config (the
// same fields a Checkpoint/TrailFile pins as its fingerprint, plus the
// seed). The dist journal checksums this string so a --resume under
// changed parameters is rejected instead of merging incompatible shards.
[[nodiscard]] std::string render_config_fingerprint(const Config& cfg);

[[nodiscard]] std::string render_checkpoint(const Checkpoint& cp);
bool parse_checkpoint(const std::string& text, Checkpoint* out,
                      std::string* err);

// Atomic write (temp + rename) / load with clean rejection of torn files.
bool write_checkpoint_file(const std::string& path, const Checkpoint& cp,
                           std::string* err);
bool load_checkpoint_file(const std::string& path, Checkpoint* out,
                          std::string* err);

}  // namespace cds::mc

#endif  // CDS_MC_CHECKPOINT_H
