#include "mc/trace.h"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

namespace cds::mc {

namespace {

// Strict non-negative integer parse: whole token, no sign, no suffix.
bool parse_u64_tok(const std::string& s, std::uint64_t* out) {
  if (s.empty() || s[0] == '-' || s[0] == '+') return false;
  errno = 0;
  char* end = nullptr;
  unsigned long long v = std::strtoull(s.c_str(), &end, 10);
  if (errno != 0 || end == s.c_str() || *end != '\0') return false;
  *out = v;
  return true;
}

std::string flatten(const std::string& s) {
  std::string out = s;
  for (char& c : out) {
    if (c == '\n' || c == '\r') c = ' ';
  }
  return out;
}

// Splits `text` into lines, dropping comments and blank lines but keeping
// 1-based original line numbers for error messages.
struct Line {
  std::string text;
  std::size_t number;
};

std::vector<Line> significant_lines(const std::string& text) {
  std::vector<Line> lines;
  std::istringstream is(text);
  std::string raw;
  std::size_t n = 0;
  while (std::getline(is, raw)) {
    ++n;
    if (!raw.empty() && raw.back() == '\r') raw.pop_back();
    std::size_t start = raw.find_first_not_of(" \t");
    if (start == std::string::npos || raw[start] == '#') continue;
    lines.push_back(Line{raw, n});
  }
  return lines;
}

bool fail(std::string* err, const std::string& what) {
  if (err != nullptr) *err = what;
  return false;
}

bool fail_at(std::string* err, std::size_t line, const std::string& what) {
  return fail(err, "line " + std::to_string(line) + ": " + what);
}

// "key value..." accessor: returns the remainder after "key " or nullopt.
bool take_keyword(const std::string& line, const char* key, std::string* rest) {
  std::size_t klen = std::strlen(key);
  if (line.compare(0, klen, key) != 0) return false;
  if (line.size() == klen) {
    rest->clear();
    return true;
  }
  if (line[klen] != ' ') return false;
  *rest = line.substr(klen + 1);
  return true;
}

bool parse_one_choice(const std::string& text, std::size_t lineno, Choice* c,
                      std::string* err) {
  // "S <chosen>/<num>" or "R <chosen>/<num>"
  if (text.size() < 3 || (text[0] != 'S' && text[0] != 'R') || text[1] != ' ') {
    return fail_at(err, lineno,
                   "malformed choice '" + text +
                       "' (expected 'S <chosen>/<num>' or 'R <chosen>/<num>')");
  }
  std::size_t slash = text.find('/', 2);
  if (slash == std::string::npos) {
    return fail_at(err, lineno, "malformed choice '" + text + "' (missing '/')");
  }
  std::uint64_t chosen = 0, num = 0;
  if (!parse_u64_tok(text.substr(2, slash - 2), &chosen) ||
      !parse_u64_tok(text.substr(slash + 1), &num)) {
    return fail_at(err, lineno, "malformed choice '" + text + "' (bad number)");
  }
  if (num < 2 || num >= 0x10000) {
    return fail_at(err, lineno,
                   "choice '" + text +
                       "': alternative count must be in [2, 65535] "
                       "(single-alternative choice points are never recorded)");
  }
  if (chosen >= num) {
    return fail_at(err, lineno,
                   "choice '" + text + "': chosen index " +
                       std::to_string(chosen) + " out of range [0, " +
                       std::to_string(num) + ")");
  }
  c->kind = text[0] == 'S' ? ChoiceKind::kSchedule : ChoiceKind::kReadsFrom;
  c->chosen = static_cast<std::uint16_t>(chosen);
  c->num = static_cast<std::uint16_t>(num);
  return true;
}

}  // namespace

void TrailFile::fingerprint_from(const Config& cfg) {
  seed = cfg.seed;
  stale_read_bound = cfg.stale_read_bound;
  max_steps = cfg.max_steps;
  strengthen_to_sc = cfg.strengthen_to_sc;
  enable_sleep_sets = cfg.enable_sleep_sets;
  explore = cfg.explore;
  if (!cfg.test_name.empty()) test_name = cfg.test_name;
}

void TrailFile::apply_fingerprint(Config* cfg) const {
  cfg->seed = seed;
  cfg->stale_read_bound = stale_read_bound;
  cfg->max_steps = max_steps;
  cfg->strengthen_to_sc = strengthen_to_sc;
  cfg->enable_sleep_sets = enable_sleep_sets;
  cfg->explore = explore;
  cfg->test_name = test_name;
}

std::string TrailFile::fingerprint_mismatch(const Config& cfg) const {
  auto mismatch = [](const char* flag, std::uint64_t file_v,
                     std::uint64_t run_v) {
    return std::string(flag) + " mismatch: file has " +
           std::to_string(file_v) + ", this run has " + std::to_string(run_v);
  };
  if (!cfg.test_name.empty() && cfg.test_name != test_name) {
    return "test mismatch: file is for '" + test_name + "', this run is '" +
           cfg.test_name + "'";
  }
  if (cfg.seed != seed) return mismatch("--seed", seed, cfg.seed);
  if (cfg.stale_read_bound != stale_read_bound) {
    return mismatch("--stale", stale_read_bound, cfg.stale_read_bound);
  }
  if (cfg.max_steps != max_steps) {
    return mismatch("max_steps", max_steps, cfg.max_steps);
  }
  if (cfg.strengthen_to_sc != strengthen_to_sc) {
    return mismatch("strengthen_sc", strengthen_to_sc ? 1 : 0,
                    cfg.strengthen_to_sc ? 1 : 0);
  }
  if (cfg.enable_sleep_sets != enable_sleep_sets) {
    return mismatch("sleep_sets", enable_sleep_sets ? 1 : 0,
                    cfg.enable_sleep_sets ? 1 : 0);
  }
  if (cfg.explore != explore) {
    return std::string("--explore mismatch: file was recorded under '") +
           to_string(explore) + "', this run is '" + to_string(cfg.explore) +
           "'";
  }
  return "";
}

std::string render_choices(const std::vector<Choice>& v) {
  std::ostringstream os;
  for (const Choice& c : v) {
    os << (c.kind == ChoiceKind::kSchedule ? 'S' : 'R') << ' ' << c.chosen
       << '/' << c.num << '\n';
  }
  return os.str();
}

bool parse_choices(const std::vector<std::string>& lines, std::size_t* idx,
                   std::size_t n, std::vector<Choice>* out, std::string* err) {
  out->clear();
  out->reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    if (*idx >= lines.size()) {
      return fail(err, "truncated: expected " + std::to_string(n) +
                           " choices but found only " + std::to_string(i));
    }
    Choice c{};
    if (!parse_one_choice(lines[*idx], *idx + 1, &c, err)) return false;
    out->push_back(c);
    ++*idx;
  }
  return true;
}

std::string render_trail(const TrailFile& t) {
  std::ostringstream os;
  os << "cdsspec-trail v" << TrailFile::kVersion << '\n';
  os << "test " << t.test_name << '\n';
  os << "seed " << t.seed << '\n';
  if (!t.backend.empty() && t.backend != "model") {
    os << "backend " << t.backend << '\n';
  }
  if (!t.kind.empty()) os << "kind " << t.kind << '\n';
  if (!t.detail.empty()) os << "detail " << flatten(t.detail) << '\n';
  if (!t.inject_site.empty()) os << "inject " << t.inject_site << '\n';
  if (t.explore != ExploreMode::kSchedule) {
    os << "explore " << to_string(t.explore) << '\n';
  }
  os << "config stale=" << t.stale_read_bound << " max_steps=" << t.max_steps
     << " strengthen_sc=" << (t.strengthen_to_sc ? 1 : 0)
     << " sleep_sets=" << (t.enable_sleep_sets ? 1 : 0) << '\n';
  os << "choices " << t.choices.size() << '\n';
  os << render_choices(t.choices);
  os << "end\n";
  return os.str();
}

bool parse_trail(const std::string& text, TrailFile* out, std::string* err) {
  *out = TrailFile{};
  std::vector<Line> lines = significant_lines(text);
  std::size_t i = 0;
  auto line = [&]() -> const Line& { return lines[i]; };
  auto need = [&](const char* what) {
    return fail(err, std::string("truncated .trail file: missing ") + what);
  };

  if (lines.empty()) return fail(err, "empty .trail file");
  std::string rest;
  if (!take_keyword(line().text, "cdsspec-trail", &rest)) {
    return fail_at(err, line().number,
                   "not a .trail file (expected 'cdsspec-trail v" +
                       std::to_string(TrailFile::kVersion) + "' header)");
  }
  std::uint64_t ver = 0;
  if (rest.size() < 2 || rest[0] != 'v' ||
      !parse_u64_tok(rest.substr(1), &ver)) {
    return fail_at(err, line().number, "malformed version '" + rest + "'");
  }
  if (ver != TrailFile::kVersion) {
    return fail_at(err, line().number,
                   "unsupported .trail version v" + std::to_string(ver) +
                       " (this build reads v" +
                       std::to_string(TrailFile::kVersion) +
                       "; re-record the trail with a matching build)");
  }
  ++i;

  if (i >= lines.size() || !take_keyword(line().text, "test", &out->test_name)) {
    return need("'test <name>'");
  }
  if (out->test_name.empty()) {
    return fail_at(err, line().number, "'test' requires a name");
  }
  ++i;

  if (i >= lines.size() || !take_keyword(line().text, "seed", &rest) ||
      !parse_u64_tok(rest, &out->seed)) {
    return need("'seed <n>'");
  }
  ++i;

  if (i < lines.size() && take_keyword(line().text, "backend", &rest)) {
    // Strict token set: a trail recorded by a future backend this build
    // does not know must fail loudly, never replay under the wrong engine.
    if (rest != "model" && rest != "stress") {
      return fail_at(err, line().number,
                     "unknown backend '" + rest +
                         "' (this build replays 'model' and 'stress' trails)");
    }
    // Normalize the default so parse(render(t)) round-trips exactly.
    out->backend = rest == "model" ? "" : rest;
    ++i;
  }

  if (i < lines.size() && take_keyword(line().text, "kind", &out->kind)) ++i;
  if (i < lines.size() && take_keyword(line().text, "detail", &out->detail)) ++i;
  if (i < lines.size() &&
      take_keyword(line().text, "inject", &out->inject_site)) {
    ++i;
  }
  if (i < lines.size() && take_keyword(line().text, "explore", &rest)) {
    // Strict token set, and "schedule" normalizes to the absent default so
    // parse(render(t)) round-trips exactly.
    if (rest != "schedule" && rest != "rf") {
      return fail_at(err, line().number,
                     "unknown explore mode '" + rest +
                         "' (this build replays 'schedule' and 'rf' trails)");
    }
    out->explore = rest == "rf" ? ExploreMode::kRf : ExploreMode::kSchedule;
    ++i;
  }

  if (i >= lines.size() || !take_keyword(line().text, "config", &rest)) {
    return need("'config stale=... max_steps=... strengthen_sc=... "
                "sleep_sets=...'");
  }
  {
    std::size_t cfg_line = line().number;
    std::istringstream cs(rest);
    std::string kv;
    int seen = 0;
    while (cs >> kv) {
      std::size_t eq = kv.find('=');
      if (eq == std::string::npos) {
        return fail_at(err, cfg_line, "malformed config entry '" + kv + "'");
      }
      std::string key = kv.substr(0, eq);
      std::uint64_t val = 0;
      if (!parse_u64_tok(kv.substr(eq + 1), &val)) {
        return fail_at(err, cfg_line, "malformed config value in '" + kv + "'");
      }
      if (key == "stale") {
        out->stale_read_bound = static_cast<std::uint32_t>(val);
      } else if (key == "max_steps") {
        out->max_steps = val;
      } else if (key == "strengthen_sc") {
        out->strengthen_to_sc = val != 0;
      } else if (key == "sleep_sets") {
        out->enable_sleep_sets = val != 0;
      } else {
        return fail_at(err, cfg_line, "unknown config key '" + key + "'");
      }
      ++seen;
    }
    if (seen < 4) {
      return fail_at(err, cfg_line,
                     "config line must carry stale, max_steps, strengthen_sc "
                     "and sleep_sets");
    }
  }
  ++i;

  std::uint64_t n = 0;
  if (i >= lines.size() || !take_keyword(line().text, "choices", &rest) ||
      !parse_u64_tok(rest, &n)) {
    return need("'choices <count>'");
  }
  ++i;

  std::vector<std::string> raw;
  raw.reserve(lines.size());
  for (const Line& l : lines) raw.push_back(l.text);
  // parse_choices reports 1-based indices into `raw`; remap to the source
  // line numbers so the message points at the right spot in the file.
  std::size_t idx = i;
  if (!parse_choices(raw, &idx, static_cast<std::size_t>(n), &out->choices,
                     err)) {
    if (err != nullptr && err->rfind("line ", 0) == 0) {
      std::size_t raw_no = 0;
      if (parse_u64_tok(err->substr(5, err->find(':') - 5), &raw_no) &&
          raw_no >= 1 && raw_no <= lines.size()) {
        *err = "line " + std::to_string(lines[raw_no - 1].number) +
               err->substr(err->find(':'));
      }
    }
    return false;
  }
  i = idx;

  if (i >= lines.size() || lines[i].text != "end") {
    return fail(err,
                "truncated .trail file: missing 'end' terminator (file was "
                "cut off mid-write?)");
  }
  if (i + 1 != lines.size()) {
    return fail_at(err, lines[i + 1].number, "trailing garbage after 'end'");
  }
  return true;
}

bool write_text_file_atomic(const std::string& path, const std::string& text,
                            std::string* err) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream f(tmp, std::ios::trunc);
    if (!f) return fail(err, "cannot open '" + tmp + "' for writing");
    f << text;
    f.flush();
    if (!f) return fail(err, "short write to '" + tmp + "'");
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::string why = std::strerror(errno);
    std::remove(tmp.c_str());
    return fail(err, "cannot rename '" + tmp + "' to '" + path + "': " + why);
  }
  return true;
}

bool read_text_file(const std::string& path, std::string* out,
                    std::string* err) {
  std::ifstream f(path);
  if (!f) return fail(err, "cannot open '" + path + "'");
  std::ostringstream buf;
  buf << f.rdbuf();
  *out = buf.str();
  return true;
}

bool write_trail_file(const std::string& path, const TrailFile& t,
                      std::string* err) {
  return write_text_file_atomic(path, render_trail(t), err);
}

bool load_trail_file(const std::string& path, TrailFile* out,
                     std::string* err) {
  std::string text;
  if (!read_text_file(path, &text, err)) return false;
  if (!parse_trail(text, out, err)) {
    if (err != nullptr) *err = path + ": " + *err;
    return false;
  }
  return true;
}

}  // namespace cds::mc
