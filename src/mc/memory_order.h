// Memory orders of the C/C++11 model as explored by the checker.
//
// `consume` is intentionally absent: like CDSChecker's benchmarks, we treat
// would-be consume loads as acquire (the strengthening every compiler
// performs).
#ifndef CDS_MC_MEMORY_ORDER_H
#define CDS_MC_MEMORY_ORDER_H

#include <cstdint>

namespace cds::mc {

enum class MemoryOrder : std::uint8_t {
  relaxed = 0,
  acquire = 1,
  release = 2,
  acq_rel = 3,
  seq_cst = 4,
};

[[nodiscard]] constexpr bool is_acquire(MemoryOrder o) {
  return o == MemoryOrder::acquire || o == MemoryOrder::acq_rel ||
         o == MemoryOrder::seq_cst;
}

[[nodiscard]] constexpr bool is_release(MemoryOrder o) {
  return o == MemoryOrder::release || o == MemoryOrder::acq_rel ||
         o == MemoryOrder::seq_cst;
}

[[nodiscard]] constexpr bool is_seq_cst(MemoryOrder o) {
  return o == MemoryOrder::seq_cst;
}

[[nodiscard]] constexpr const char* to_string(MemoryOrder o) {
  switch (o) {
    case MemoryOrder::relaxed: return "relaxed";
    case MemoryOrder::acquire: return "acquire";
    case MemoryOrder::release: return "release";
    case MemoryOrder::acq_rel: return "acq_rel";
    case MemoryOrder::seq_cst: return "seq_cst";
  }
  return "?";
}

// The next-weaker parameter, as used by the paper's injection experiment
// (Section 6.4.2): seq_cst -> acq_rel, acq_rel -> release/acquire,
// acquire/release -> relaxed. For loads an acq_rel weakening means acquire,
// for stores it means release; `for_load`/`for_store` pick the legal form.
[[nodiscard]] constexpr MemoryOrder weaker(MemoryOrder o) {
  switch (o) {
    case MemoryOrder::seq_cst: return MemoryOrder::acq_rel;
    case MemoryOrder::acq_rel: return MemoryOrder::release;
    case MemoryOrder::release: return MemoryOrder::relaxed;
    case MemoryOrder::acquire: return MemoryOrder::relaxed;
    case MemoryOrder::relaxed: return MemoryOrder::relaxed;
  }
  return MemoryOrder::relaxed;
}

// Restrict an order to the forms a plain load / plain store accepts.
[[nodiscard]] constexpr MemoryOrder for_load(MemoryOrder o) {
  if (o == MemoryOrder::acq_rel || o == MemoryOrder::release) return MemoryOrder::acquire;
  return o;
}

[[nodiscard]] constexpr MemoryOrder for_store(MemoryOrder o) {
  if (o == MemoryOrder::acq_rel || o == MemoryOrder::acquire) return MemoryOrder::release;
  return o;
}

}  // namespace cds::mc

#endif  // CDS_MC_MEMORY_ORDER_H
