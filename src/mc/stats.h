// Exploration statistics, shared by the engine, the checkpoint layer, and
// the harness (lives outside engine.h so mc/checkpoint.h can persist it
// without pulling in the whole engine).
#ifndef CDS_MC_STATS_H
#define CDS_MC_STATS_H

#include <cstdint>

#include "mc/violation.h"

namespace cds::mc {

struct ExplorationStats {
  std::uint64_t executions = 0;        // total explored (DFS + sampled)
  std::uint64_t feasible = 0;          // completed (checkable) executions
  std::uint64_t pruned_bound = 0;      // hit the step bound or a budget
  std::uint64_t pruned_livelock = 0;   // only yielded spinners remained
  std::uint64_t pruned_redundant = 0;  // sleep-set: prefix covered elsewhere
  std::uint64_t builtin_violation_execs = 0;
  std::uint64_t engine_fatal_execs = 0;  // discarded: internal checker error
  std::uint64_t crash_execs = 0;  // test body crashed; contained (kCrash)
  std::uint64_t violations_total = 0;  // built-in + spec-layer reports
  // --- reads-from equivalence mode (Config::ExploreMode::kRf) ----------
  // Both stay 0 under schedule mode. Like every other counter they are
  // schedule-independent per subtree, so sharded merges stay bit-identical
  // to serial runs.
  std::uint64_t rf_classes = 0;     // feasible rf-class representatives
  std::uint64_t rf_infeasible = 0;  // wait-starved (infeasible) rf classes
  bool hit_execution_cap = false;
  bool stopped_early = false;
  double seconds = 0.0;

  // --- budgets, degradation, and the verdict ---------------------------
  std::uint64_t sampled = 0;        // executions from the random-walk phase
  std::uint64_t max_trail_depth = 0;  // deepest choice sequence (coverage)
  std::uint64_t seed = 0;           // RNG seed (reproduces sampled runs)
  bool hit_time_budget = false;
  bool hit_memory_budget = false;
  bool watchdog_fired = false;      // no-progress DFS detected
  bool exhausted = false;           // DFS enumerated the whole bounded tree
  // The exploration stopped because Config::stop_request tripped (work
  // stealing): counters cover a prefix of the subtree, and the engine's
  // preempt_frontier() names the last explored execution so a coordinator
  // can re-split the remainder. Deliberately NOT merged by
  // merge_shard_stats — a preempted shard plus its re-split sub-shards
  // jointly cover the subtree, so the merger clears the flag (and the
  // stopped_early it implies) before folding the partial result in.
  bool preempted = false;
  Verdict verdict = Verdict::kInconclusive;
};

// Folds one shard's stats into an aggregate. Disjoint subtree shards
// partition the executions of a serial run, so counters sum exactly
// (merged counts from an exhaustive sharded run are bit-identical to the
// serial run's); budget/stop flags are sticky ORs, exhaustion is an AND
// (every shard must finish its subtree), and depth is a max. `seconds`
// sums shard CPU time, so it exceeds wall time when shards ran
// concurrently. The verdict is NOT merged here — it needs run-level
// context (crashed workers, falsifying shard priority); see the parallel
// driver.
inline void merge_shard_stats(ExplorationStats& into,
                              const ExplorationStats& shard) {
  into.executions += shard.executions;
  into.feasible += shard.feasible;
  into.pruned_bound += shard.pruned_bound;
  into.pruned_livelock += shard.pruned_livelock;
  into.pruned_redundant += shard.pruned_redundant;
  into.builtin_violation_execs += shard.builtin_violation_execs;
  into.engine_fatal_execs += shard.engine_fatal_execs;
  into.crash_execs += shard.crash_execs;
  into.violations_total += shard.violations_total;
  into.rf_classes += shard.rf_classes;
  into.rf_infeasible += shard.rf_infeasible;
  into.hit_execution_cap = into.hit_execution_cap || shard.hit_execution_cap;
  into.stopped_early = into.stopped_early || shard.stopped_early;
  into.seconds += shard.seconds;
  into.sampled += shard.sampled;
  if (shard.max_trail_depth > into.max_trail_depth) {
    into.max_trail_depth = shard.max_trail_depth;
  }
  into.hit_time_budget = into.hit_time_budget || shard.hit_time_budget;
  into.hit_memory_budget = into.hit_memory_budget || shard.hit_memory_budget;
  into.watchdog_fired = into.watchdog_fired || shard.watchdog_fired;
  into.exhausted = into.exhausted && shard.exhausted;
}

}  // namespace cds::mc

#endif  // CDS_MC_STATS_H
