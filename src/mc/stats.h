// Exploration statistics, shared by the engine, the checkpoint layer, and
// the harness (lives outside engine.h so mc/checkpoint.h can persist it
// without pulling in the whole engine).
#ifndef CDS_MC_STATS_H
#define CDS_MC_STATS_H

#include <cstdint>

#include "mc/violation.h"

namespace cds::mc {

struct ExplorationStats {
  std::uint64_t executions = 0;        // total explored (DFS + sampled)
  std::uint64_t feasible = 0;          // completed (checkable) executions
  std::uint64_t pruned_bound = 0;      // hit the step bound or a budget
  std::uint64_t pruned_livelock = 0;   // only yielded spinners remained
  std::uint64_t pruned_redundant = 0;  // sleep-set: prefix covered elsewhere
  std::uint64_t builtin_violation_execs = 0;
  std::uint64_t engine_fatal_execs = 0;  // discarded: internal checker error
  std::uint64_t crash_execs = 0;  // test body crashed; contained (kCrash)
  std::uint64_t violations_total = 0;  // built-in + spec-layer reports
  bool hit_execution_cap = false;
  bool stopped_early = false;
  double seconds = 0.0;

  // --- budgets, degradation, and the verdict ---------------------------
  std::uint64_t sampled = 0;        // executions from the random-walk phase
  std::uint64_t max_trail_depth = 0;  // deepest choice sequence (coverage)
  std::uint64_t seed = 0;           // RNG seed (reproduces sampled runs)
  bool hit_time_budget = false;
  bool hit_memory_budget = false;
  bool watchdog_fired = false;      // no-progress DFS detected
  bool exhausted = false;           // DFS enumerated the whole bounded tree
  Verdict verdict = Verdict::kInconclusive;
};

}  // namespace cds::mc

#endif  // CDS_MC_STATS_H
