#include "mc/shard.h"

#include <algorithm>
#include <cassert>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "support/io.h"

#if defined(__unix__) || defined(__APPLE__)
#define CDS_MC_SHARD_HAS_FORK 1
#include <poll.h>
#include <signal.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>
#endif

namespace cds::mc {

ShardPlan enumerate_shard_prefixes(const Config& cfg, const TestFn& test,
                                   int depth, std::size_t max_units) {
  ShardPlan plan;
  if (max_units == 0) max_units = 1;

  // Probe config: one execution per probe, no degradation, no budgets, no
  // checkpointing — only the tree-shaping knobs survive.
  Config pcfg = cfg;
  pcfg.max_executions = 1;
  pcfg.sample_executions = 0;
  pcfg.sampling_only = false;
  pcfg.time_budget_seconds = 0.0;
  pcfg.memory_budget_bytes = 0;
  pcfg.watchdog_no_progress_execs = 0;
  pcfg.stop_on_first_violation = false;
  pcfg.checkpoint_path.clear();
  pcfg.checkpoint_every_execs = 0;
  Engine probe(pcfg);

  struct Node {
    std::vector<Choice> prefix;
    bool leaf = false;  // probe ended exactly at |prefix|: one execution
  };
  std::vector<Node> units(1);

  for (int level = 0; level < depth && units.size() < max_units; ++level) {
    std::vector<Node> next;
    next.reserve(units.size());
    bool expanded = false;
    for (Node& u : units) {
      if (u.leaf || next.size() >= max_units) {
        next.push_back(std::move(u));
        continue;
      }
      probe.set_subtree(u.prefix);
      (void)probe.explore(test);
      ++plan.probe_executions;
      std::vector<Choice> t = probe.current_trail();
      if (t.size() <= u.prefix.size()) {
        // The prefix already covers a whole execution — a leaf unit.
        u.leaf = true;
        next.push_back(std::move(u));
        continue;
      }
      // Split at the first choice point below the prefix: one child per
      // alternative, in DFS order.
      const Choice& branch = t[u.prefix.size()];
      expanded = true;
      for (std::uint16_t a = 0; a < branch.num; ++a) {
        Node child;
        child.prefix = u.prefix;
        child.prefix.push_back(Choice{branch.kind, a, branch.num});
        next.push_back(std::move(child));
      }
    }
    units = std::move(next);
    if (!expanded) break;
  }

  plan.prefixes.reserve(units.size());
  for (Node& u : units) plan.prefixes.push_back(std::move(u.prefix));
  return plan;
}

std::vector<std::vector<Choice>> split_remaining_frontier(
    std::size_t pinned, const std::vector<Choice>& frontier) {
  std::vector<std::vector<Choice>> out;
  if (pinned > frontier.size()) return out;
  // Deepest level first: the right-siblings of the frontier's last choice
  // are the executions a serial DFS would visit next (advance() flips the
  // deepest non-exhausted choice point).
  for (std::size_t i = frontier.size(); i-- > pinned;) {
    const Choice& c = frontier[i];
    for (std::uint32_t a = c.chosen + 1u; a < c.num; ++a) {
      std::vector<Choice> p(frontier.begin(),
                            frontier.begin() + static_cast<std::ptrdiff_t>(i));
      p.push_back(Choice{c.kind, static_cast<std::uint16_t>(a), c.num});
      out.push_back(std::move(p));
    }
  }
  return out;
}

bool prefix_dfs_less(const std::vector<Choice>& a,
                     const std::vector<Choice>& b) {
  const std::size_t n = std::min(a.size(), b.size());
  for (std::size_t i = 0; i < n; ++i) {
    if (a[i].chosen != b[i].chosen) return a[i].chosen < b[i].chosen;
  }
  return a.size() < b.size();
}

// ---------------------------------------------------------------------------
// fork_map
// ---------------------------------------------------------------------------

namespace {

std::string spool_path(const std::string& dir, std::size_t i) {
  return dir + "/unit-" + std::to_string(i) + ".result";
}

#ifdef CDS_MC_SHARD_HAS_FORK

// Worker loop: read "u <idx>\n" assignments off `in`, answer each with an
// "r <idx> <len>\n<len payload bytes>" frame on `out`; "q\n" (or EOF, or
// any malformed input) ends the process. Never returns.
[[noreturn]] void worker_loop(int in, int out,
                              const std::function<std::string(std::size_t)>& work,
                              std::ptrdiff_t sigkill_on_unit) {
  std::string line;
  for (;;) {
    line.clear();
    char c;
    for (;;) {
      long k = support::read_some(in, &c, 1);
      if (k <= 0) _exit(0);
      if (c == '\n') break;
      line.push_back(c);
    }
    if (line == "q") _exit(0);
    if (line.size() < 3 || line[0] != 'u' || line[1] != ' ') _exit(1);
    char* end = nullptr;
    std::size_t idx =
        static_cast<std::size_t>(std::strtoull(line.c_str() + 2, &end, 10));
    if (end == nullptr || *end != '\0') _exit(1);
    if (static_cast<std::ptrdiff_t>(idx) == sigkill_on_unit) {
      raise(SIGKILL);  // test hook: die holding the assignment
    }
    std::string text = work(idx);
    std::string hdr = "r " + std::to_string(idx) + " " +
                      std::to_string(text.size()) + "\n";
    if (!support::write_full(out, hdr) || !support::write_full(out, text)) {
      _exit(0);
    }
  }
}

#endif  // CDS_MC_SHARD_HAS_FORK

}  // namespace

std::vector<UnitResult> fork_map(
    std::size_t n, const std::function<std::string(std::size_t)>& work,
    const ForkMapOptions& opts) {
  std::vector<UnitResult> out(n);
  std::vector<char> done(n, 0);
  const auto t0 = std::chrono::steady_clock::now();
  auto elapsed = [&]() {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
        .count();
  };

  // The whole map — worker pipes, spool writes, and the sequential
  // fallback — runs with SIGPIPE ignored, so a worker dying at any point
  // in the conversation surfaces as EPIPE on the write that raced it.
  support::SigpipeIgnoreScope sigpipe_guard;

  if (!opts.spool_dir.empty()) {
    for (std::size_t i = 0; i < n; ++i) {
      const std::string path = spool_path(opts.spool_dir, i);
      std::string text, err;
      bool quarantined = false;
      if (support::read_spool_file(path, &text, &err, &quarantined)) {
        std::string why;
        if (opts.accept_spooled && !opts.accept_spooled(text, &why)) {
          // Intact on disk but not a payload this build can consume
          // (typically a stale wire version): set it aside and recompute.
          std::fprintf(stderr,
                       "cds::mc::fork_map: rejecting spool entry %s (%s); "
                       "quarantined\n",
                       path.c_str(), why.c_str());
          (void)std::rename(path.c_str(), (path + ".quarantined").c_str());
          continue;
        }
        out[i].ran = true;
        out[i].from_spool = true;
        out[i].text = std::move(text);
        done[i] = 1;
        if (opts.on_result) opts.on_result(i, out[i]);
      } else if (quarantined) {
        // Partial write or bit rot: the file was renamed aside and the
        // unit will be recomputed below.
        std::fprintf(stderr, "cds::mc::fork_map: corrupt spool entry %s\n",
                     err.c_str());
      }
    }
  }

  auto spool_write = [&](std::size_t i) {
    if (opts.spool_dir.empty()) return;
    std::string err;
    if (!support::write_spool_file(spool_path(opts.spool_dir, i), out[i].text,
                                   &err)) {
      std::fprintf(stderr, "cds::mc::fork_map: spool write failed: %s\n",
                   err.c_str());
    }
  };

  // Sequential fallback; also sweeps up units left unassigned if every
  // worker dies. Units already marked done (spool hits, crashed shards)
  // are left alone.
  auto run_inline = [&]() {
    for (std::size_t i = 0; i < n; ++i) {
      if (done[i]) continue;
      out[i].assigned_seconds = elapsed();
      out[i].worker = 0;
      out[i].text = work(i);
      out[i].done_seconds = elapsed();
      out[i].ran = true;
      done[i] = 1;
      spool_write(i);
      if (opts.on_result) opts.on_result(i, out[i]);
    }
  };

#ifndef CDS_MC_SHARD_HAS_FORK
  run_inline();
  return out;
#else
  std::size_t pending = 0;
  for (std::size_t i = 0; i < n; ++i) pending += done[i] ? 0u : 1u;
  if (opts.jobs <= 1 || pending <= 1) {
    run_inline();
    return out;
  }

  struct Worker {
    pid_t pid = -1;
    int work_fd = -1;    // coordinator writes assignments
    int result_fd = -1;  // coordinator reads result frames
    std::ptrdiff_t assigned = -1;
    std::string buf;
    bool alive = false;
  };
  std::vector<Worker> ws;
  const std::size_t want =
      std::min(static_cast<std::size_t>(opts.jobs), pending);

  for (std::size_t w = 0; w < want; ++w) {
    int wfd[2], rfd[2];
    if (pipe(wfd) != 0) break;
    if (pipe(rfd) != 0) {
      close(wfd[0]);
      close(wfd[1]);
      break;
    }
    pid_t pid = fork();
    if (pid < 0) {
      close(wfd[0]);
      close(wfd[1]);
      close(rfd[0]);
      close(rfd[1]);
      break;
    }
    if (pid == 0) {
      close(wfd[1]);
      close(rfd[0]);
      for (const Worker& o : ws) {  // siblings' ends are not ours to hold
        close(o.work_fd);
        close(o.result_fd);
      }
      worker_loop(wfd[0], rfd[1], work, opts.sigkill_on_unit);
    }
    close(wfd[0]);
    close(rfd[1]);
    Worker wk;
    wk.pid = pid;
    wk.work_fd = wfd[1];
    wk.result_fd = rfd[0];
    wk.alive = true;
    ws.push_back(wk);
  }

  if (ws.empty()) {
    run_inline();  // spool-backed sequential fallback
    return out;
  }

  std::size_t next_unit = 0;
  auto next_pending = [&]() -> std::ptrdiff_t {
    while (next_unit < n && done[next_unit]) ++next_unit;
    return next_unit < n ? static_cast<std::ptrdiff_t>(next_unit++) : -1;
  };
  auto assign = [&](Worker& w) {
    std::ptrdiff_t u = next_pending();
    if (u < 0) {
      (void)support::write_full(w.work_fd, "q\n");
      close(w.work_fd);
      w.work_fd = -1;
      w.assigned = -1;
      return;
    }
    w.assigned = u;
    out[static_cast<std::size_t>(u)].assigned_seconds = elapsed();
    out[static_cast<std::size_t>(u)].worker =
        static_cast<int>(&w - ws.data());
    (void)support::write_full(w.work_fd, "u " + std::to_string(u) + "\n");
    // If the write failed the worker is dying; its EOF below records the
    // unit as crashed.
  };
  for (Worker& w : ws) assign(w);

  std::size_t alive = ws.size();
  std::vector<pollfd> pfds;
  std::vector<std::size_t> order;
  while (alive > 0) {
    pfds.clear();
    order.clear();
    for (std::size_t wi = 0; wi < ws.size(); ++wi) {
      if (!ws[wi].alive) continue;
      pfds.push_back(pollfd{ws[wi].result_fd, POLLIN, 0});
      order.push_back(wi);
    }
    int pr = poll(pfds.data(), static_cast<nfds_t>(pfds.size()), -1);
    if (pr < 0) {
      if (errno == EINTR) continue;
      break;
    }
    for (std::size_t k = 0; k < pfds.size(); ++k) {
      if ((pfds[k].revents & (POLLIN | POLLHUP | POLLERR)) == 0) continue;
      Worker& w = ws[order[k]];
      char tmp[65536];
      long got = support::read_some(w.result_fd, tmp, sizeof tmp);
      if (got > 0) {
        w.buf.append(tmp, static_cast<std::size_t>(got));
        for (;;) {  // drain complete frames
          std::size_t nl = w.buf.find('\n');
          if (nl == std::string::npos) break;
          unsigned long long idx = 0, len = 0;
          if (std::sscanf(w.buf.c_str(), "r %llu %llu", &idx, &len) != 2 ||
              idx >= n) {
            // Protocol corruption: drop the worker, crash its unit below.
            got = 0;
            break;
          }
          if (w.buf.size() < nl + 1 + len) break;  // frame incomplete
          out[idx].text = w.buf.substr(nl + 1, len);
          out[idx].ran = true;
          out[idx].done_seconds = elapsed();
          done[idx] = 1;
          spool_write(idx);
          if (opts.on_result) opts.on_result(idx, out[idx]);
          w.buf.erase(0, nl + 1 + len);
          w.assigned = -1;
          assign(w);
        }
      }
      if (got <= 0) {
        // EOF (worker exited or died) or corruption. An in-flight
        // assignment becomes a crashed unit — recorded, never retried, so
        // the merged outcome is deterministic.
        w.alive = false;
        --alive;
        if (w.work_fd >= 0) {
          close(w.work_fd);
          w.work_fd = -1;
        }
        close(w.result_fd);
        w.result_fd = -1;
        if (w.assigned >= 0) {
          const auto idx = static_cast<std::size_t>(w.assigned);
          done[idx] = 1;
          out[idx].ran = false;
          if (opts.on_result) opts.on_result(idx, out[idx]);
          w.assigned = -1;
        }
        if (w.pid > 0) {
          kill(w.pid, SIGKILL);  // no-op if it exited cleanly
        }
      }
    }
  }

  for (Worker& w : ws) {
    if (w.work_fd >= 0) close(w.work_fd);
    if (w.result_fd >= 0) close(w.result_fd);
    int status = 0;
    waitpid(w.pid, &status, 0);
  }

  // Units never assigned (all workers died early) still get computed.
  run_inline();
  return out;
#endif
}

}  // namespace cds::mc
