// Parallel sharding substrate: splits a DFS exploration into disjoint
// subtrees by enumerating trail prefixes, and fans work units out to forked
// worker processes over a pipe-based protocol.
//
// Because every execution is a deterministic function of its choice
// sequence (mc/trail.h), the subtrees rooted at the children of any choice
// point partition the executions below it. enumerate_shard_prefixes probes
// the tree breadth-first — one throwaway execution per interior prefix —
// to materialize that partition up to a configurable depth; a worker
// exploring prefix P with Engine::set_subtree(P) then enumerates exactly
// the executions a serial DFS would have visited under P, so merged shard
// counters are bit-identical to a serial run's (see mc/stats.h
// merge_shard_stats).
#ifndef CDS_MC_SHARD_H
#define CDS_MC_SHARD_H

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "mc/config.h"
#include "mc/engine.h"
#include "mc/trail.h"

namespace cds::mc {

struct ShardPlan {
  // Disjoint subtree roots in DFS order; together they cover the whole
  // tree. A prefix equal to a complete execution's trail is a leaf unit
  // (the worker runs exactly one execution).
  std::vector<std::vector<Choice>> prefixes;
  // Executions spent probing (discarded; workers re-explore them).
  std::uint64_t probe_executions = 0;
};

// Enumerates up to ~`max_units` disjoint subtree prefixes by expanding
// branch points breadth-first to at most `depth` choice levels. The probe
// runs single executions under `cfg` with budgets/checkpointing stripped;
// `cfg`'s tree-shaping knobs (max_steps, stale_read_bound, sleep sets,
// strengthen_to_sc) are honored since they define the tree being split.
// Always returns at least one prefix (the empty prefix = the whole tree).
ShardPlan enumerate_shard_prefixes(const Config& cfg, const TestFn& test,
                                   int depth, std::size_t max_units);

// Decomposes the unexplored remainder of a preempted shard into disjoint
// subtree prefixes. `frontier` is the trail of the last execution the
// shard explored (Engine::preempt_frontier) and `pinned` the length of
// its own prefix: the remainder is exactly the right-sibling subtrees of
// the frontier at every level >= pinned, i.e. prefixes
//   frontier[0..i) + Choice{kind_i, a, num_i}   for a in (chosen_i, num_i)
// The returned prefixes are in serial DFS order (deepest level first,
// alternatives ascending), and together with the executions the shard
// already counted they partition the shard's subtree — so merging the
// partial result and the sub-shards' results reproduces the undisturbed
// shard bit-identically. Returns empty when the frontier was the
// subtree's last execution (nothing remained).
std::vector<std::vector<Choice>> split_remaining_frontier(
    std::size_t pinned, const std::vector<Choice>& frontier);

// DFS order over subtree prefixes of one choice tree: lexicographic on
// the chosen alternatives, with a proper prefix ordering before its
// extensions (its subtree's first execution precedes them). The merge
// layers sort dynamically created shards with this so violations and
// record caps behave exactly as in a serial DFS.
bool prefix_dfs_less(const std::vector<Choice>& a,
                     const std::vector<Choice>& b);

// ---------------------------------------------------------------------------
// fork_map: run N opaque work units across forked workers
// ---------------------------------------------------------------------------

struct UnitResult {
  // False = the worker process died (crashed/killed) while this unit was
  // assigned to it; `text` is empty and the unit was not retried, so a
  // crash deterministically becomes that shard's outcome.
  bool ran = false;
  bool from_spool = false;  // satisfied from spool_dir, not computed
  std::string text;
  // Coordinator-side timing (seconds since fork_map entry) and the worker
  // slot that computed the unit: observability only — never part of the
  // deterministic merged result. Spool hits keep the zero defaults.
  double assigned_seconds = 0.0;
  double done_seconds = 0.0;
  int worker = -1;
};

struct ForkMapOptions {
  int jobs = 1;
  // When set, each unit's result text is persisted to
  // "<spool_dir>/unit-<i>.result" (atomic write), and results already
  // spooled there are reused instead of recomputed — the spool directory
  // doubles as the fallback channel on platforms without fork (units run
  // sequentially in-process, results still land in the spool) and as a
  // crude resume for interrupted parallel runs. The caller must create the
  // directory.
  std::string spool_dir;
  // When set, a spooled result is only reused if this returns true;
  // rejected entries are quarantined (renamed aside, like a torn file)
  // and recomputed. Callers use it to reject payloads written by an
  // older wire version — the CRC footer proves integrity, not schema.
  std::function<bool(const std::string& text, std::string* why)>
      accept_spooled;
  // Test hook: the worker assigned this unit raises SIGKILL instead of
  // running it, exercising the coordinator's worker-crash containment.
  std::ptrdiff_t sigkill_on_unit = -1;
  // Invoked in the coordinating process the moment a unit reaches its
  // final state — computed by a worker, satisfied from the spool, run
  // inline, or crashed (`ran == false`). Callers use this to journal
  // outcomes write-ahead of the merge; the callback runs before fork_map
  // returns the unit to anyone else, so an fsync inside it orders the
  // durable record strictly before consumption.
  std::function<void(std::size_t, const UnitResult&)> on_result;
};

// Runs `work(i)` for every i in [0, n) and returns results indexed by
// unit. With jobs > 1 on POSIX, forks `jobs` workers and feeds them units
// dynamically over pipes (results stream back length-prefixed); a worker
// death marks its in-flight unit crashed and the remaining workers carry
// on. Falls back to sequential in-process execution when jobs <= 1, fork
// is unavailable, or worker setup fails. `work` must be safe to run in a
// forked child (no reliance on threads, which fork does not carry over).
std::vector<UnitResult> fork_map(
    std::size_t n, const std::function<std::string(std::size_t)>& work,
    const ForkMapOptions& opts);

}  // namespace cds::mc

#endif  // CDS_MC_SHARD_H
