// Violation records: CDSChecker-style built-in checks plus the spec layer's
// reports (the spec checker files its findings through the same channel so
// harnesses see one stream of diagnostics).
#ifndef CDS_MC_VIOLATION_H
#define CDS_MC_VIOLATION_H

#include <cstdint>
#include <string>
#include <vector>

#include "mc/trail.h"

namespace cds::mc {

enum class ViolationKind {
  kDataRace,           // unordered conflicting plain accesses
  kUninitializedLoad,  // atomic load observes the pre-init message
  kDeadlock,           // every live thread is blocked
  kCrash,              // test body raised SIGSEGV/SIGBUS/SIGFPE/SIGABRT;
                       // contained by the engine's signal-to-verdict layer
  kInadmissible,       // execution outside the spec's admissibility (warn)
  kSpecAssertion,      // sequential-history / justification check failed
  kUserAssertion,      // mc::model_assert failed (CDSChecker-style assert)
  kEngineFatal,        // internal checker error; the execution is discarded
                       // (diagnostic, not a property violation)
};

[[nodiscard]] constexpr const char* to_string(ViolationKind k) {
  switch (k) {
    case ViolationKind::kDataRace: return "data race";
    case ViolationKind::kUninitializedLoad: return "uninitialized load";
    case ViolationKind::kDeadlock: return "deadlock";
    case ViolationKind::kCrash: return "crash";
    case ViolationKind::kInadmissible: return "inadmissible execution";
    case ViolationKind::kSpecAssertion: return "specification violation";
    case ViolationKind::kUserAssertion: return "assertion failure";
    case ViolationKind::kEngineFatal: return "engine fatal";
  }
  return "?";
}

// Stable wire names for .trail / checkpoint files (the display strings
// above contain spaces). parse_violation_kind accepts exactly these.
[[nodiscard]] constexpr const char* wire_name(ViolationKind k) {
  switch (k) {
    case ViolationKind::kDataRace: return "data-race";
    case ViolationKind::kUninitializedLoad: return "uninit-load";
    case ViolationKind::kDeadlock: return "deadlock";
    case ViolationKind::kCrash: return "crash";
    case ViolationKind::kInadmissible: return "inadmissible";
    case ViolationKind::kSpecAssertion: return "spec-assertion";
    case ViolationKind::kUserAssertion: return "user-assertion";
    case ViolationKind::kEngineFatal: return "engine-fatal";
  }
  return "?";
}

[[nodiscard]] inline bool parse_violation_kind(const std::string& s,
                                               ViolationKind* out) {
  for (ViolationKind k :
       {ViolationKind::kDataRace, ViolationKind::kUninitializedLoad,
        ViolationKind::kDeadlock, ViolationKind::kCrash,
        ViolationKind::kInadmissible, ViolationKind::kSpecAssertion,
        ViolationKind::kUserAssertion, ViolationKind::kEngineFatal}) {
    if (s == wire_name(k)) {
      *out = k;
      return true;
    }
  }
  return false;
}

// What an exploration proved. `kVerifiedExhaustive` means the DFS ran the
// whole tree with no cap, budget, or internal error in the way; anything
// short of that without a property violation is `kInconclusive` — the run
// only covered part of the space (the stats say how much).
enum class Verdict {
  kVerifiedExhaustive,  // full state space explored, no violation
  kFalsified,           // at least one property violation found
  kInconclusive,        // partial coverage (cap/budget/sampling), none found
};

[[nodiscard]] constexpr const char* to_string(Verdict v) {
  switch (v) {
    case Verdict::kVerifiedExhaustive: return "verified-exhaustive";
    case Verdict::kFalsified: return "falsified";
    case Verdict::kInconclusive: return "inconclusive";
  }
  return "?";
}

struct Violation {
  ViolationKind kind;
  std::string detail;
  std::uint64_t execution_index = 0;  // which explored execution produced it
  // Choice sequence of the violating execution: replaying it (mc/trace.h,
  // cdsspec-run --replay-trail) deterministically re-runs exactly this
  // execution. Empty for violations restored from a checkpoint, whose
  // trails are not persisted.
  std::vector<Choice> trail;
  // Index of the unit test within its benchmark (set by the harness when
  // aggregating; identifies the TestFn a trail repro must replay).
  std::uint32_t test_index = 0;
};

}  // namespace cds::mc

#endif  // CDS_MC_VIOLATION_H
