// Violation records: CDSChecker-style built-in checks plus the spec layer's
// reports (the spec checker files its findings through the same channel so
// harnesses see one stream of diagnostics).
#ifndef CDS_MC_VIOLATION_H
#define CDS_MC_VIOLATION_H

#include <string>

namespace cds::mc {

enum class ViolationKind {
  kDataRace,           // unordered conflicting plain accesses
  kUninitializedLoad,  // atomic load observes the pre-init message
  kDeadlock,           // every live thread is blocked
  kInadmissible,       // execution outside the spec's admissibility (warn)
  kSpecAssertion,      // sequential-history / justification check failed
  kUserAssertion,      // mc::model_assert failed (CDSChecker-style assert)
  kEngineFatal,        // internal checker error; the execution is discarded
                       // (diagnostic, not a property violation)
};

[[nodiscard]] constexpr const char* to_string(ViolationKind k) {
  switch (k) {
    case ViolationKind::kDataRace: return "data race";
    case ViolationKind::kUninitializedLoad: return "uninitialized load";
    case ViolationKind::kDeadlock: return "deadlock";
    case ViolationKind::kInadmissible: return "inadmissible execution";
    case ViolationKind::kSpecAssertion: return "specification violation";
    case ViolationKind::kUserAssertion: return "assertion failure";
    case ViolationKind::kEngineFatal: return "engine fatal";
  }
  return "?";
}

// What an exploration proved. `kVerifiedExhaustive` means the DFS ran the
// whole tree with no cap, budget, or internal error in the way; anything
// short of that without a property violation is `kInconclusive` — the run
// only covered part of the space (the stats say how much).
enum class Verdict {
  kVerifiedExhaustive,  // full state space explored, no violation
  kFalsified,           // at least one property violation found
  kInconclusive,        // partial coverage (cap/budget/sampling), none found
};

[[nodiscard]] constexpr const char* to_string(Verdict v) {
  switch (v) {
    case Verdict::kVerifiedExhaustive: return "verified-exhaustive";
    case Verdict::kFalsified: return "falsified";
    case Verdict::kInconclusive: return "inconclusive";
  }
  return "?";
}

struct Violation {
  ViolationKind kind;
  std::string detail;
  std::uint64_t execution_index = 0;  // which explored execution produced it
};

}  // namespace cds::mc

#endif  // CDS_MC_VIOLATION_H
