// Per-modeled-thread memory-model state.
#ifndef CDS_MC_THREAD_STATE_H
#define CDS_MC_THREAD_STATE_H

#include <cstdint>

#include "support/vector_clock.h"

namespace cds::mc {

enum class ThreadStatus : std::uint8_t {
  kAbsent,        // slot unused this execution
  kRunnable,
  kYielded,       // called yield(); deprioritized until another thread stores
  kBlockedJoin,   // waiting for a thread to finish
  kBlockedMutex,  // waiting for a mutex
  kBlockedRead,   // rf mode: load chose to wait for a not-yet-written message
  kDone,
};

struct ThreadMMState {
  // Happens-before clock (vc) + coherence view (view). vc[self] counts this
  // thread's visible events.
  support::Timestamps cur;

  // Snapshot taken at the most recent release fence; relaxed stores after
  // it carry this clock for acquire readers (C++11 fence synchronization).
  support::Timestamps rel_fence;
  bool has_rel_fence = false;

  // Sync clocks of messages observed by relaxed loads since the last
  // acquire fence; an acquire fence joins them into `cur`.
  support::Timestamps acq_pending;

  // Per-thread event counter (vc[self] mirrors it).
  std::uint32_t pos = 0;

  // Stale-read fairness budget used so far this execution.
  std::uint32_t stale_reads = 0;

  // SC index of this thread's most recent visible event (0 if it was not
  // seq_cst); the spec layer's ordering-point annotations capture it.
  std::uint32_t last_sc_index = 0;

  void reset() {
    cur.clear();
    rel_fence.clear();
    has_rel_fence = false;
    acq_pending.clear();
    pos = 0;
    stale_reads = 0;
    last_sc_index = 0;
  }
};

}  // namespace cds::mc

#endif  // CDS_MC_THREAD_STATE_H
