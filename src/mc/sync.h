// Modeled mutex with scheduler-aware blocking (no spin-loop state
// explosion) and release/acquire happens-before edges between unlock and
// the next lock. Used by lock-based benchmarks (e.g. the concurrent
// hashmap's segments).
#ifndef CDS_MC_SYNC_H
#define CDS_MC_SYNC_H

#include "mc/engine.h"

namespace cds::mc {

class Mutex {
 public:
  explicit Mutex(const char* name = "mutex") { st_.name = name; }
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() { harness::Backend::current()->mutex_lock(st_); }
  void unlock() { harness::Backend::current()->mutex_unlock(st_); }

 private:
  MutexState st_;
};

class LockGuard {
 public:
  explicit LockGuard(Mutex& m) : m_(m) { m_.lock(); }
  ~LockGuard() { m_.unlock(); }
  LockGuard(const LockGuard&) = delete;
  LockGuard& operator=(const LockGuard&) = delete;

 private:
  Mutex& m_;
};

}  // namespace cds::mc

#endif  // CDS_MC_SYNC_H
