#include "mc/checkpoint.h"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <sstream>

#include "mc/trace.h"

namespace cds::mc {

namespace {

bool parse_u64_tok(const std::string& s, std::uint64_t* out) {
  if (s.empty() || s[0] == '-' || s[0] == '+') return false;
  errno = 0;
  char* end = nullptr;
  unsigned long long v = std::strtoull(s.c_str(), &end, 10);
  if (errno != 0 || end == s.c_str() || *end != '\0') return false;
  *out = v;
  return true;
}

bool parse_double_tok(const std::string& s, double* out) {
  if (s.empty() || s[0] == '-') return false;
  errno = 0;
  char* end = nullptr;
  double v = std::strtod(s.c_str(), &end);
  if (errno != 0 || end == s.c_str() || *end != '\0') return false;
  *out = v;
  return true;
}

std::string flatten(const std::string& s) {
  std::string out = s;
  for (char& c : out) {
    if (c == '\n' || c == '\r') c = ' ';
  }
  return out;
}

std::vector<std::string> significant_lines(const std::string& text) {
  std::vector<std::string> lines;
  std::istringstream is(text);
  std::string raw;
  while (std::getline(is, raw)) {
    if (!raw.empty() && raw.back() == '\r') raw.pop_back();
    std::size_t start = raw.find_first_not_of(" \t");
    if (start == std::string::npos || raw[start] == '#') continue;
    lines.push_back(raw);
  }
  return lines;
}

bool fail(std::string* err, const std::string& what) {
  if (err != nullptr) *err = what;
  return false;
}

bool take_keyword(const std::string& line, const char* key, std::string* rest) {
  std::size_t klen = std::strlen(key);
  if (line.compare(0, klen, key) != 0) return false;
  if (line.size() == klen) {
    rest->clear();
    return true;
  }
  if (line[klen] != ' ') return false;
  *rest = line.substr(klen + 1);
  return true;
}

// Parses a "k1=v1 k2=v2 ..." payload against a fixed table of u64 slots,
// requiring every key exactly once. Shared by the stats and flags lines.
struct KeySlot {
  const char* key;
  std::uint64_t* slot;
};

bool parse_kv_line(const std::string& rest, const char* what,
                   const std::vector<KeySlot>& slots, std::string* err) {
  std::vector<bool> seen(slots.size(), false);
  std::istringstream cs(rest);
  std::string kv;
  while (cs >> kv) {
    std::size_t eq = kv.find('=');
    if (eq == std::string::npos) {
      return fail(err, std::string(what) + ": malformed entry '" + kv + "'");
    }
    std::string key = kv.substr(0, eq);
    std::uint64_t val = 0;
    if (!parse_u64_tok(kv.substr(eq + 1), &val)) {
      return fail(err, std::string(what) + ": malformed value in '" + kv + "'");
    }
    bool matched = false;
    for (std::size_t s = 0; s < slots.size(); ++s) {
      if (key == slots[s].key) {
        *slots[s].slot = val;
        seen[s] = true;
        matched = true;
        break;
      }
    }
    if (!matched) {
      return fail(err, std::string(what) + ": unknown key '" + key + "'");
    }
  }
  for (std::size_t s = 0; s < slots.size(); ++s) {
    if (!seen[s]) {
      return fail(err, std::string(what) + ": missing key '" +
                           slots[s].key + "'");
    }
  }
  return true;
}

}  // namespace

const char* to_string(Checkpoint::Phase p) {
  switch (p) {
    case Checkpoint::Phase::kStart:
      return "start";
    case Checkpoint::Phase::kDfs:
      return "dfs";
    case Checkpoint::Phase::kSampling:
      return "sampling";
  }
  return "?";
}

std::string render_config_fingerprint(const Config& cfg) {
  std::ostringstream os;
  os << "stale=" << cfg.stale_read_bound << " max_steps=" << cfg.max_steps
     << " strengthen_sc=" << (cfg.strengthen_to_sc ? 1 : 0)
     << " sleep_sets=" << (cfg.enable_sleep_sets ? 1 : 0)
     << " explore=" << to_string(cfg.explore) << " seed=" << cfg.seed;
  return os.str();
}

void Checkpoint::fingerprint_from(const Config& cfg) {
  seed = cfg.seed;
  stale_read_bound = cfg.stale_read_bound;
  max_steps = cfg.max_steps;
  strengthen_to_sc = cfg.strengthen_to_sc;
  enable_sleep_sets = cfg.enable_sleep_sets;
  explore = cfg.explore;
  if (!cfg.test_name.empty()) test_name = cfg.test_name;
  test_index = cfg.test_index;
}

std::string Checkpoint::fingerprint_mismatch(const Config& cfg) const {
  // A checkpoint's fingerprint fields mirror a TrailFile's, so the
  // comparison logic is shared with it.
  TrailFile fp;
  fp.test_name = test_name;
  fp.seed = seed;
  fp.stale_read_bound = stale_read_bound;
  fp.max_steps = max_steps;
  fp.strengthen_to_sc = strengthen_to_sc;
  fp.enable_sleep_sets = enable_sleep_sets;
  fp.explore = explore;
  return fp.fingerprint_mismatch(cfg);
}

std::uint64_t Checkpoint::extra_value(const std::string& key,
                                      std::uint64_t fallback) const {
  for (const auto& [k, v] : extra) {
    if (k == key) return v;
  }
  return fallback;
}

void Checkpoint::set_extra(const std::string& key, std::uint64_t value) {
  for (auto& [k, v] : extra) {
    if (k == key) {
      v = value;
      return;
    }
  }
  extra.emplace_back(key, value);
}

std::string render_checkpoint(const Checkpoint& cp) {
  std::ostringstream os;
  os << "cdsspec-checkpoint v" << Checkpoint::kVersion << '\n';
  os << "test " << cp.test_name << '\n';
  os << "test_index " << cp.test_index << '\n';
  os << "seed " << cp.seed << '\n';
  os << "phase " << to_string(cp.phase) << '\n';
  os << "rng " << cp.rng_state << '\n';
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.6f", cp.elapsed_seconds);
  os << "elapsed " << buf << '\n';
  os << "config stale=" << cp.stale_read_bound << " max_steps=" << cp.max_steps
     << " strengthen_sc=" << (cp.strengthen_to_sc ? 1 : 0)
     << " sleep_sets=" << (cp.enable_sleep_sets ? 1 : 0)
     << " explore=" << (cp.explore == ExploreMode::kRf ? 1 : 0) << '\n';
  const ExplorationStats& st = cp.stats;
  os << "stats executions=" << st.executions << " feasible=" << st.feasible
     << " pruned_bound=" << st.pruned_bound
     << " pruned_livelock=" << st.pruned_livelock
     << " pruned_redundant=" << st.pruned_redundant
     << " builtin=" << st.builtin_violation_execs
     << " fatal=" << st.engine_fatal_execs << " crash=" << st.crash_execs
     << " violations=" << st.violations_total << " sampled=" << st.sampled
     << " rf_classes=" << st.rf_classes << " rf_infeasible=" << st.rf_infeasible
     << " max_depth=" << st.max_trail_depth
     << " last_progress=" << cp.last_progress_exec << '\n';
  os << "flags cap=" << (st.hit_execution_cap ? 1 : 0)
     << " time=" << (st.hit_time_budget ? 1 : 0)
     << " mem=" << (st.hit_memory_budget ? 1 : 0)
     << " watchdog=" << (st.watchdog_fired ? 1 : 0)
     << " exhausted=" << (st.exhausted ? 1 : 0)
     << " stopped=" << (st.stopped_early ? 1 : 0) << '\n';
  os << "violations " << cp.violations.size() << '\n';
  for (const Violation& v : cp.violations) {
    os << "v " << wire_name(v.kind) << ' ' << v.execution_index << ' '
       << v.test_index << ' ' << flatten(v.detail) << '\n';
  }
  os << "extra " << cp.extra.size() << '\n';
  for (const auto& [k, v] : cp.extra) {
    os << "x " << k << ' ' << v << '\n';
  }
  os << "trail " << cp.trail.size() << '\n';
  os << render_choices(cp.trail);
  os << "end\n";
  return os.str();
}

bool parse_checkpoint(const std::string& text, Checkpoint* out,
                      std::string* err) {
  *out = Checkpoint{};
  std::vector<std::string> lines = significant_lines(text);
  std::size_t i = 0;
  auto need = [&](const char* what) {
    return fail(err, std::string("truncated checkpoint: missing ") + what);
  };

  if (lines.empty()) return fail(err, "empty checkpoint file");
  std::string rest;
  if (!take_keyword(lines[i], "cdsspec-checkpoint", &rest)) {
    return fail(err, "not a checkpoint file (expected 'cdsspec-checkpoint v" +
                         std::to_string(Checkpoint::kVersion) + "' header)");
  }
  std::uint64_t ver = 0;
  if (rest.size() < 2 || rest[0] != 'v' ||
      !parse_u64_tok(rest.substr(1), &ver)) {
    return fail(err, "malformed checkpoint version '" + rest + "'");
  }
  if (ver != Checkpoint::kVersion) {
    return fail(err, "unsupported checkpoint version v" + std::to_string(ver) +
                         " (this build reads v" +
                         std::to_string(Checkpoint::kVersion) +
                         "; delete the file to start fresh)");
  }
  ++i;

  if (i >= lines.size() || !take_keyword(lines[i], "test", &out->test_name)) {
    return need("'test <name>'");
  }
  ++i;
  if (i >= lines.size() || !take_keyword(lines[i], "test_index", &rest) ||
      !parse_u64_tok(rest, &out->test_index)) {
    return need("'test_index <n>'");
  }
  ++i;
  if (i >= lines.size() || !take_keyword(lines[i], "seed", &rest) ||
      !parse_u64_tok(rest, &out->seed)) {
    return need("'seed <n>'");
  }
  ++i;
  if (i >= lines.size() || !take_keyword(lines[i], "phase", &rest)) {
    return need("'phase start|dfs|sampling'");
  }
  if (rest == "start") {
    out->phase = Checkpoint::Phase::kStart;
  } else if (rest == "dfs") {
    out->phase = Checkpoint::Phase::kDfs;
  } else if (rest == "sampling") {
    out->phase = Checkpoint::Phase::kSampling;
  } else {
    return fail(err, "unknown phase '" + rest + "'");
  }
  ++i;
  if (i >= lines.size() || !take_keyword(lines[i], "rng", &rest) ||
      !parse_u64_tok(rest, &out->rng_state)) {
    return need("'rng <state>'");
  }
  ++i;
  if (i >= lines.size() || !take_keyword(lines[i], "elapsed", &rest) ||
      !parse_double_tok(rest, &out->elapsed_seconds)) {
    return need("'elapsed <seconds>'");
  }
  ++i;

  if (i >= lines.size() || !take_keyword(lines[i], "config", &rest)) {
    return need("'config ...'");
  }
  {
    std::uint64_t stale = 0, steps = 0, sc = 0, sleeps = 0, explore = 0;
    if (!parse_kv_line(rest, "config",
                       {{"stale", &stale},
                        {"max_steps", &steps},
                        {"strengthen_sc", &sc},
                        {"sleep_sets", &sleeps},
                        {"explore", &explore}},
                       err)) {
      return false;
    }
    out->stale_read_bound = static_cast<std::uint32_t>(stale);
    out->max_steps = steps;
    out->strengthen_to_sc = sc != 0;
    out->enable_sleep_sets = sleeps != 0;
    out->explore = explore != 0 ? ExploreMode::kRf : ExploreMode::kSchedule;
  }
  ++i;

  if (i >= lines.size() || !take_keyword(lines[i], "stats", &rest)) {
    return need("'stats ...'");
  }
  ExplorationStats& st = out->stats;
  if (!parse_kv_line(rest, "stats",
                     {{"executions", &st.executions},
                      {"feasible", &st.feasible},
                      {"pruned_bound", &st.pruned_bound},
                      {"pruned_livelock", &st.pruned_livelock},
                      {"pruned_redundant", &st.pruned_redundant},
                      {"builtin", &st.builtin_violation_execs},
                      {"fatal", &st.engine_fatal_execs},
                      {"crash", &st.crash_execs},
                      {"violations", &st.violations_total},
                      {"sampled", &st.sampled},
                      {"rf_classes", &st.rf_classes},
                      {"rf_infeasible", &st.rf_infeasible},
                      {"max_depth", &st.max_trail_depth},
                      {"last_progress", &out->last_progress_exec}},
                     err)) {
    return false;
  }
  st.seed = out->seed;
  ++i;

  if (i >= lines.size() || !take_keyword(lines[i], "flags", &rest)) {
    return need("'flags ...'");
  }
  {
    std::uint64_t cap = 0, time = 0, mem = 0, wd = 0, exh = 0, stop = 0;
    if (!parse_kv_line(rest, "flags",
                       {{"cap", &cap},
                        {"time", &time},
                        {"mem", &mem},
                        {"watchdog", &wd},
                        {"exhausted", &exh},
                        {"stopped", &stop}},
                       err)) {
      return false;
    }
    st.hit_execution_cap = cap != 0;
    st.hit_time_budget = time != 0;
    st.hit_memory_budget = mem != 0;
    st.watchdog_fired = wd != 0;
    st.exhausted = exh != 0;
    st.stopped_early = stop != 0;
  }
  ++i;

  std::uint64_t n = 0;
  if (i >= lines.size() || !take_keyword(lines[i], "violations", &rest) ||
      !parse_u64_tok(rest, &n)) {
    return need("'violations <count>'");
  }
  ++i;
  for (std::uint64_t k = 0; k < n; ++k) {
    if (i >= lines.size() || !take_keyword(lines[i], "v", &rest)) {
      return fail(err, "truncated checkpoint: expected " + std::to_string(n) +
                           " violation lines but found only " +
                           std::to_string(k));
    }
    // "v <kind> <exec_index> <test_index> <detail...>"
    std::istringstream vs(rest);
    std::string kind_tok, exec_tok, tidx_tok;
    if (!(vs >> kind_tok >> exec_tok >> tidx_tok)) {
      return fail(err, "malformed violation line 'v " + rest + "'");
    }
    Violation v;
    std::uint64_t tidx = 0;
    if (!parse_violation_kind(kind_tok, &v.kind) ||
        !parse_u64_tok(exec_tok, &v.execution_index) ||
        !parse_u64_tok(tidx_tok, &tidx)) {
      return fail(err, "malformed violation line 'v " + rest + "'");
    }
    v.test_index = static_cast<std::uint32_t>(tidx);
    std::getline(vs, v.detail);
    if (!v.detail.empty() && v.detail[0] == ' ') v.detail.erase(0, 1);
    out->violations.push_back(std::move(v));
    ++i;
  }

  if (i >= lines.size() || !take_keyword(lines[i], "extra", &rest) ||
      !parse_u64_tok(rest, &n)) {
    return need("'extra <count>'");
  }
  ++i;
  for (std::uint64_t k = 0; k < n; ++k) {
    if (i >= lines.size() || !take_keyword(lines[i], "x", &rest)) {
      return fail(err, "truncated checkpoint: expected " + std::to_string(n) +
                           " extra lines but found only " + std::to_string(k));
    }
    std::size_t sp = rest.find(' ');
    std::uint64_t val = 0;
    if (sp == std::string::npos || sp == 0 ||
        !parse_u64_tok(rest.substr(sp + 1), &val)) {
      return fail(err, "malformed extra line 'x " + rest + "'");
    }
    out->extra.emplace_back(rest.substr(0, sp), val);
    ++i;
  }

  if (i >= lines.size() || !take_keyword(lines[i], "trail", &rest) ||
      !parse_u64_tok(rest, &n)) {
    return need("'trail <count>'");
  }
  ++i;
  if (!parse_choices(lines, &i, static_cast<std::size_t>(n), &out->trail,
                     err)) {
    if (err != nullptr) *err = "checkpoint trail: " + *err;
    return false;
  }

  if (i >= lines.size() || lines[i] != "end") {
    return fail(err,
                "truncated checkpoint: missing 'end' terminator (file was cut "
                "off mid-write?)");
  }
  if (i + 1 != lines.size()) {
    return fail(err, "trailing garbage after 'end'");
  }
  return true;
}

bool write_checkpoint_file(const std::string& path, const Checkpoint& cp,
                           std::string* err) {
  return write_text_file_atomic(path, render_checkpoint(cp), err);
}

bool load_checkpoint_file(const std::string& path, Checkpoint* out,
                          std::string* err) {
  std::string text;
  if (!read_text_file(path, &text, err)) return false;
  if (!parse_checkpoint(text, out, err)) {
    if (err != nullptr) *err = path + ": " + *err;
    return false;
  }
  return true;
}

}  // namespace cds::mc
