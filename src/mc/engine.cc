#include "mc/engine.h"

#include <csetjmp>
#include <csignal>

#include <cassert>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "spec/annotations.h"

namespace cds::mc {

namespace {
Engine* g_engine = nullptr;

[[noreturn]] void fatal(const char* msg) {
  std::fprintf(stderr, "cds::mc fatal: %s\n", msg);
  std::abort();
}

// --- signal-to-verdict containment ----------------------------------------
// A fatal signal raised while a modeled-thread fiber runs (the only place
// user test code executes) lands here, records what happened, and longjmps
// back onto the scheduler's native stack frame in run_one, abandoning the
// fiber mid-flight. The jump buffer is armed only across the
// switch-into-fiber window; a fault anywhere else (the checker itself) is
// re-raised with the default disposition — containment must never mask a
// bug in the engine.
//
// The handler runs on a dedicated sigaltstack so that a fiber-stack
// overflow (whose own stack is unusable, by definition) can still be
// caught. sigsetjmp(.., 1) saves the signal mask, so the siglongjmp also
// unblocks the signal being handled.
sigjmp_buf g_crash_jmp;
volatile sig_atomic_t g_crash_armed = 0;
volatile sig_atomic_t g_crash_sig = 0;
void* volatile g_crash_addr = nullptr;

constexpr int kCrashSignals[] = {SIGSEGV, SIGBUS, SIGFPE, SIGABRT};
constexpr int kNumCrashSignals =
    static_cast<int>(sizeof(kCrashSignals) / sizeof(kCrashSignals[0]));
struct sigaction g_old_actions[kNumCrashSignals];
stack_t g_old_altstack;
alignas(16) char g_altstack[64 * 1024];

void crash_signal_handler(int sig, siginfo_t* info, void*) {
  if (g_crash_armed == 0) {
    ::signal(sig, SIG_DFL);
    ::raise(sig);
    return;
  }
  g_crash_armed = 0;
  g_crash_sig = sig;
  g_crash_addr = info != nullptr ? info->si_addr : nullptr;
  siglongjmp(g_crash_jmp, 1);
}

const char* signal_name(int sig) {
  switch (sig) {
    case SIGSEGV: return "SIGSEGV";
    case SIGBUS: return "SIGBUS";
    case SIGFPE: return "SIGFPE";
    case SIGABRT: return "SIGABRT";
  }
  return "fatal signal";
}
}  // namespace

const char* to_string(TraceEvent::Kind k) {
  using K = TraceEvent::Kind;
  switch (k) {
    case K::kLoad: return "load";
    case K::kStore: return "store";
    case K::kRmw: return "rmw";
    case K::kCasFail: return "cas-fail";
    case K::kFence: return "fence";
    case K::kSpawn: return "spawn";
    case K::kJoin: return "join";
    case K::kYield: return "yield";
    case K::kLock: return "lock";
    case K::kUnlock: return "unlock";
    case K::kThreadEnd: return "thread-end";
  }
  return "?";
}

Engine* Engine::current() { return g_engine; }

Engine::Engine(Config cfg)
    : cfg_(cfg), rf_mode_(cfg.explore == ExploreMode::kRf) {
  sched_fiber_.init_native();
  threads_.resize(static_cast<std::size_t>(cfg_.max_threads));
  for (Thread& t : threads_) t.fib = std::make_unique<fiber::Fiber>();
  fiber::Fiber::set_fallthrough_handler(&Engine::on_fiber_fallthrough);
  // A choice fan-out that cannot be recorded in a uint16 Choice must fail
  // the execution loudly, never truncate (release builds used to
  // mis-explore silently).
  trail_.set_overflow_handler(&Engine::on_trail_overflow, this);
  // Cache registry slots once; hot-path bumps are single adds through
  // these pointers. Counter/histogram entries are per-execution-pure, so
  // sharded sums stay bit-identical to serial runs.
  m_executions_ = &obs_.counter("engine.executions");
  m_sleep_prunes_ = &obs_.counter("engine.sleep_set_prunes");
  m_rf_choice_points_ = &obs_.counter("engine.rf_choice_points");
  m_rf_candidates_ = &obs_.counter("engine.rf_candidates");
  m_sched_choice_points_ = &obs_.counter("engine.schedule_choice_points");
  m_rf_classes_ = &obs_.counter("engine.rf_classes");
  m_rf_infeasible_ = &obs_.counter("engine.rf_infeasible_prunes");
  m_rf_deferred_reads_ = &obs_.counter("engine.rf_deferred_reads");
  m_rf_wait_choices_ = &obs_.counter("engine.rf_wait_choices");
  m_trail_depth_ = &obs_.histogram("engine.trail_depth");
  m_rf_fanout_ = &obs_.histogram("engine.rf_fanout");
  m_mem_peak_ = &obs_.gauge("engine.mem_estimate_peak_bytes");
  m_arena_peak_ = &obs_.gauge("engine.arena_peak_bytes");
}

void Engine::on_trail_overflow(void* self, std::uint32_t num) {
  static_cast<Engine*>(self)->engine_fatal(
      "choice fan-out " + std::to_string(num) +
      " exceeds the trail's recordable range [1, 65535] (raise the relevant "
      "bound, e.g. lower stale_read_bound, to shrink reads-from fan-out)");
}

Engine::~Engine() = default;

const ThreadMMState& Engine::mm(int tid) const {
  assert(tid >= 0 && tid < spawned_);
  return threads_[static_cast<std::size_t>(tid)].mm;
}

const char* Engine::location_name(std::uint32_t loc) const {
  return loc < locs_.size() ? locs_[loc].name : "?";
}

spec::Recorder* Engine::recorder() {
  // The model checker uses the process-global recorder the SpecChecker
  // arms; stress backends own private per-instance recorders instead.
  return spec::Recorder::current();
}

spec::OPEvent Engine::snapshot_op(int tid) const {
  const ThreadMMState& st = mm(tid);
  spec::OPEvent ev;
  ev.thread = tid;
  ev.pos = st.pos;
  ev.vc = st.cur.vc;
  ev.sc_index = st.last_sc_index;
  return ev;
}

void Engine::report_violation(ViolationKind k, std::string detail) {
  // Engine-fatal records are diagnostics about the checker itself, not
  // property violations: they must not flip the verdict to falsified or
  // trip stop_on_first_violation.
  if (k != ViolationKind::kEngineFatal) ++violations_total_;
  bool builtin = k == ViolationKind::kDataRace ||
                 k == ViolationKind::kUninitializedLoad ||
                 k == ViolationKind::kDeadlock;
  if (builtin) had_builtin_ = true;
  if (violations_.size() < cfg_.max_recorded_violations) {
    Violation v;
    v.kind = k;
    v.detail = std::move(detail);
    v.execution_index = exec_index_;
    // Every recorded violation carries the choice sequence that produced
    // it: a replayable one-execution repro (exported as a .trail file by
    // the CLI). Violations restored from a checkpoint have no trail.
    v.trail = trail_.consumed();
    v.test_index = cfg_.test_index;
    violations_.push_back(std::move(v));
  }
}

void Engine::engine_fatal(std::string detail) {
  if (g_engine != this || current_ < 0) {
    // No live execution to fail; this is unrecoverable API misuse.
    fatal(detail.c_str());
  }
  std::fprintf(stderr, "cds::mc engine-fatal (execution %llu discarded): %s\n",
               static_cast<unsigned long long>(exec_index_), detail.c_str());
  report_violation(ViolationKind::kEngineFatal, std::move(detail));
  fatal_abandon_ = true;
  abandon_execution();
}

void Engine::on_fiber_fallthrough(fiber::Fiber& f) {
  Engine* e = Engine::current();
  if (e == nullptr) return;  // trampoline aborts
  f.mark_finished();
  e->engine_fatal("fiber entry wrapper returned without switching out");
}

void Engine::record(TraceEvent::Kind k, MemoryOrder o, std::uint32_t loc,
                    std::uint64_t value) {
  if (!cfg_.collect_trace) return;
  trace_.push_back(TraceEvent{k, static_cast<std::int16_t>(current_), o, loc, value});
}

std::string Engine::format_trace() const {
  std::ostringstream os;
  for (const TraceEvent& e : trace_) {
    os << "  T" << e.thread << ": " << to_string(e.kind);
    if (e.loc != TraceEvent::kNoLoc) os << ' ' << location_name(e.loc);
    switch (e.kind) {
      case TraceEvent::Kind::kLoad:
      case TraceEvent::Kind::kStore:
      case TraceEvent::Kind::kRmw:
      case TraceEvent::Kind::kCasFail:
        os << " = " << static_cast<std::int64_t>(e.value) << " ["
           << to_string(e.order) << ']';
        break;
      case TraceEvent::Kind::kSpawn:
      case TraceEvent::Kind::kJoin:
        os << " T" << e.value;
        break;
      case TraceEvent::Kind::kFence:
        os << " [" << to_string(e.order) << ']';
        break;
      default:
        break;
    }
    os << '\n';
  }
  return os.str();
}

// ---------------------------------------------------------------------------
// Exploration loop
// ---------------------------------------------------------------------------

double Engine::seconds_since_start() const {
  // Includes the elapsed time restored from a checkpoint, so wall-clock
  // budgets keep counting across a kill+resume instead of resetting.
  return resume_elapsed_ +
         std::chrono::duration<double>(std::chrono::steady_clock::now() - t0_)
             .count();
}

std::size_t Engine::memory_usage_estimate() const {
  std::size_t bytes = arena_.bytes_reserved();
  for (const Location& L : locs_) {
    bytes += L.history.capacity() * sizeof(Message);
    // Each message's `sync` Timestamps owns two heap vectors (vector clock
    // + coherence view); on release-sequence-heavy histories those
    // dominate sizeof(Message), so omitting them used to let such
    // workloads blow far past the memory budget before it tripped. Ditto
    // the live release-sequence heads.
    for (const Message& m : L.history) {
      bytes += (m.sync.vc.stored_size() + m.sync.view.stored_size()) *
               sizeof(std::uint32_t);
    }
    bytes += L.rs_heads.capacity() * sizeof(ReleaseSeqHead);
    for (const ReleaseSeqHead& h : L.rs_heads) {
      bytes += (h.sync.vc.stored_size() + h.sync.view.stored_size()) *
               sizeof(std::uint32_t);
    }
  }
  bytes += trace_.capacity() * sizeof(TraceEvent);
  bytes += trail_.raw().capacity() * sizeof(Choice);
  return bytes;
}

bool Engine::check_budgets() {
  if (active_deadline_ > 0.0 && seconds_since_start() >= active_deadline_) {
    hit_time_budget_ = true;
    return true;
  }
  if (cfg_.memory_budget_bytes != 0 &&
      memory_usage_estimate() > cfg_.memory_budget_bytes) {
    hit_memory_budget_ = true;
    return true;
  }
  return false;
}

bool Engine::tally_execution(ExplorationStats& stats) {
  ++stats.executions;
  m_executions_->add();
  m_trail_depth_->record(trail_.depth());
  m_mem_peak_->set_max(memory_usage_estimate());
  m_arena_peak_->set_max(arena_.bytes_reserved());
  if (trail_.depth() > stats.max_trail_depth) {
    stats.max_trail_depth = trail_.depth();
  }
  bool keep_going = true;
  // Each checkable execution in rf mode is one class representative (both
  // clean completions and built-in-violation executions name a class —
  // CDSChecker counts buggy executions as explored).
  switch (outcome_) {
    case Outcome::kComplete:
      ++stats.feasible;
      if (rf_mode_) {
        ++stats.rf_classes;
        m_rf_classes_->add();
      }
      if (listener_ != nullptr) keep_going = listener_->on_execution_complete(*this);
      break;
    case Outcome::kBuiltinViolation:
      ++stats.feasible;
      ++stats.builtin_violation_execs;
      if (rf_mode_) {
        ++stats.rf_classes;
        m_rf_classes_->add();
      }
      break;
    case Outcome::kPrunedInfeasibleRf:
      ++stats.rf_infeasible;
      m_rf_infeasible_->add();
      break;
    case Outcome::kEngineFatal:
      ++stats.engine_fatal_execs;
      break;
    case Outcome::kCrash:
      ++stats.crash_execs;
      break;
    case Outcome::kPrunedBound:
      ++stats.pruned_bound;
      break;
    case Outcome::kPrunedLivelock:
      ++stats.pruned_livelock;
      break;
    case Outcome::kPrunedRedundant:
      ++stats.pruned_redundant;
      m_sleep_prunes_->add();
      break;
    case Outcome::kRunning:
      fatal("execution ended while still running");
  }
  return keep_going;
}

void Engine::install_crash_handlers() {
  if (!cfg_.contain_crashes || crash_handlers_active_) return;
  stack_t ss{};
  ss.ss_sp = g_altstack;
  ss.ss_size = sizeof g_altstack;
  ss.ss_flags = 0;
  ::sigaltstack(&ss, &g_old_altstack);
  struct sigaction sa{};
  sa.sa_sigaction = &crash_signal_handler;
  sa.sa_flags = SA_SIGINFO | SA_ONSTACK;
  sigemptyset(&sa.sa_mask);
  for (int i = 0; i < kNumCrashSignals; ++i) {
    ::sigaction(kCrashSignals[i], &sa, &g_old_actions[i]);
  }
  g_crash_armed = 0;
  crash_handlers_active_ = true;
}

void Engine::restore_crash_handlers() {
  if (!crash_handlers_active_) return;
  for (int i = 0; i < kNumCrashSignals; ++i) {
    ::sigaction(kCrashSignals[i], &g_old_actions[i], nullptr);
  }
  if (g_old_altstack.ss_sp != nullptr && (g_old_altstack.ss_flags & SS_DISABLE) == 0) {
    ::sigaltstack(&g_old_altstack, nullptr);
  } else {
    stack_t off{};
    off.ss_flags = SS_DISABLE;
    ::sigaltstack(&off, nullptr);
  }
  g_crash_armed = 0;
  crash_handlers_active_ = false;
}

void Engine::contain_crash(int sig, const void* addr) {
  std::ostringstream d;
  d << "test body crashed with " << signal_name(sig) << " on modeled thread T"
    << current_;
  if (addr != nullptr && (sig == SIGSEGV || sig == SIGBUS)) {
    d << " (fault address " << addr << ")";
    for (int i = 0; i < spawned_; ++i) {
      if (threads_[static_cast<std::size_t>(i)].fib->guard_contains(addr)) {
        d << ": stack overflow of T" << i << "'s "
          << fiber::Fiber::kStackSize / 1024 << " KiB fiber stack";
        break;
      }
    }
  }
  report_violation(ViolationKind::kCrash, d.str());
  outcome_ = Outcome::kCrash;
}

void Engine::write_checkpoint(Checkpoint::Phase phase,
                              const ExplorationStats& stats,
                              std::uint64_t last_progress_exec) {
  if (cfg_.checkpoint_path.empty()) return;
  Checkpoint cp = cp_base_;
  cp.fingerprint_from(cfg_);
  if (cp.test_name.empty()) cp.test_name = "test";
  cp.phase = phase;
  cp.rng_state = rng_.state();
  cp.elapsed_seconds = seconds_since_start();
  cp.stats = stats;
  cp.stats.violations_total = violations_total_;
  cp.stats.hit_time_budget = hit_time_budget_;
  cp.stats.hit_memory_budget = hit_memory_budget_;
  cp.last_progress_exec = last_progress_exec;
  // cp_base_.violations holds the harness's prior-test records; append
  // this test's own on top. Trails are per-violation repro artifacts, not
  // resume state; dropping them keeps checkpoints small and their absence
  // after a resume is documented behavior.
  cp.violations = cp_base_.violations;
  for (const Violation& v : violations_) {
    Violation copy = v;
    copy.trail.clear();
    cp.violations.push_back(std::move(copy));
  }
  if (listener_ != nullptr) listener_->on_checkpoint(cp.extra);
  cp.trail = phase == Checkpoint::Phase::kDfs ? trail_.raw()
                                              : std::vector<Choice>{};
  std::string err;
  if (!write_checkpoint_file(cfg_.checkpoint_path, cp, &err)) {
    std::fprintf(stderr, "cds::mc: checkpoint write failed: %s\n", err.c_str());
  }
}

ExplorationStats Engine::explore(const TestFn& test) {
  if (g_engine != nullptr) fatal("nested Engine::explore on one OS thread");
  g_engine = this;
  harness::Backend::set_current(this);
  trail_.reset_all();
  violations_.clear();
  violations_total_ = 0;
  preempt_frontier_.clear();
  ExplorationStats stats;
  stats.seed = cfg_.seed;
  rng_ = support::Xorshift64(support::derive_seed(cfg_.seed, 0));
  t0_ = std::chrono::steady_clock::now();
  hit_time_budget_ = false;
  hit_memory_budget_ = false;
  resume_elapsed_ = 0.0;
  frontier_frac_floor_ = 0.0;
  install_crash_handlers();

  std::uint64_t last_progress_exec = 0;
  bool stopped = false;
  bool skip_dfs = false;
  bool resume_sampling = false;

  // Resume: restore the interrupted exploration's counters, violation
  // records, RNG stream, elapsed budget, and DFS frontier. Checkpoints are
  // written after an execution is tallied and before the trail advances,
  // so restoring the trail and advancing past it continues exactly where
  // the killed run would have gone next; a resumed run therefore converges
  // to the same stats and verdict as an uninterrupted one.
  if (resume_.has_value() && resume_->phase != Checkpoint::Phase::kStart) {
    const Checkpoint& rc = *resume_;
    stats = rc.stats;
    stats.seed = cfg_.seed;
    stats.verdict = Verdict::kInconclusive;
    stats.seconds = 0.0;
    violations_ = rc.violations;
    violations_total_ = rc.stats.violations_total;
    last_progress_exec = rc.last_progress_exec;
    rng_.set_state(rc.rng_state);
    resume_elapsed_ = rc.elapsed_seconds;
    hit_time_budget_ = rc.stats.hit_time_budget;
    hit_memory_budget_ = rc.stats.hit_memory_budget;
    if (rc.phase == Checkpoint::Phase::kDfs) {
      trail_.restore(rc.trail);
      if (!trail_.advance()) {
        stats.exhausted = true;
        skip_dfs = true;
      }
    } else {
      skip_dfs = true;
      resume_sampling = true;
    }
  }
  const bool resumed_mid_run =
      resume_.has_value() && resume_->phase != Checkpoint::Phase::kStart;
  resume_.reset();

  // Subtree restriction: seed the trail with the shard's prefix and pin it
  // so DFS (and the degraded sampling phase) never leaves this subtree.
  // Combining it with a mid-run resume would clobber the resumed DFS
  // frontier; that used to be assert-only, so NDEBUG builds silently
  // explored the wrong tree. Hard error in every build.
  if (!subtree_.empty()) {
    if (resumed_mid_run) {
      restore_crash_handlers();
      g_engine = nullptr;
      harness::Backend::set_current(nullptr);
      fatal("set_subtree and set_resume are mutually exclusive (a subtree "
            "prefix would clobber the resumed DFS frontier)");
    }
    trail_.restore(subtree_);
    trail_.set_pinned(subtree_.size());
  }

  // Heartbeat meter, armed only when requested: the disabled hot path is a
  // single null-pointer branch per execution.
  progress_.reset();
  if (cfg_.progress_interval_seconds > 0.0) {
    progress_ = std::make_unique<obs::ProgressMeter>(
        cfg_.progress_interval_seconds,
        cfg_.progress_label.empty() ? cfg_.test_name : cfg_.progress_label);
  }

  // When degradation is possible, the DFS phase gets only a fraction of
  // the wall budget so the sampling phase has time left to run.
  const bool can_degrade = cfg_.sample_executions > 0;
  if (cfg_.time_budget_seconds > 0.0) {
    active_deadline_ = can_degrade
                           ? cfg_.time_budget_seconds * cfg_.dfs_budget_fraction
                           : cfg_.time_budget_seconds;
    // Fraction 0 means "skip straight to sampling": an infinitesimal DFS
    // deadline trips after the first execution.
    if (can_degrade && active_deadline_ <= 0.0) active_deadline_ = 1e-9;
  } else {
    active_deadline_ = 0.0;
  }

  // Phase 1: exhaustive DFS (skipped entirely under sampling_only, which
  // the fuzzer's DFS-vs-sampling oracle uses to drive the random-walk
  // phase on its own).
  const auto dfs_t0 = std::chrono::steady_clock::now();
  for (; !cfg_.sampling_only && !skip_dfs;) {
    exec_index_ = stats.executions;
    std::uint64_t violations_before = violations_total_;
    run_one(test);
    bool keep_going = tally_execution(stats);
    if (progress_) beat_progress(stats, "dfs");
    if (outcome_ == Outcome::kComplete || outcome_ == Outcome::kBuiltinViolation) {
      last_progress_exec = stats.executions;
    }
    // Periodic checkpoint: after the tally, before any stop decision or
    // trail advance, so a resume re-enters the loop at the next
    // unexplored execution.
    if (cfg_.checkpoint_every_execs != 0 &&
        stats.executions % cfg_.checkpoint_every_execs == 0) {
      write_checkpoint(Checkpoint::Phase::kDfs, stats, last_progress_exec);
    }

    if (outcome_ == Outcome::kCrash) {
      // The crash is already a recorded kCrash violation carrying its
      // trail; the in-process engine always stops here (the harness's
      // fork-isolated sweep mode provides keep-going crash semantics).
      stats.stopped_early = true;
      stopped = true;
      break;
    }
    if (cfg_.stop_on_first_violation && violations_total_ > violations_before) {
      stats.stopped_early = true;
      stopped = true;
      break;
    }
    if (!keep_going) {
      stats.stopped_early = true;
      stopped = true;
      break;
    }
    // Cooperative preemption (work stealing): stop after the execution
    // just tallied and surface its trail, so the coordinator can re-split
    // the unexplored right-sibling subtrees. Checked before advance(), so
    // the frontier names an execution this run did count — the partial
    // result plus the re-split shards partition the subtree exactly.
    if (cfg_.stop_request && cfg_.stop_request()) {
      stats.preempted = true;
      stats.stopped_early = true;
      preempt_frontier_ = trail_.raw();
      stopped = true;
      break;
    }
    if (cfg_.max_executions != 0 && stats.executions >= cfg_.max_executions) {
      stats.hit_execution_cap = !trail_.raw().empty();
      break;
    }
    if (hit_time_budget_ || hit_memory_budget_) break;
    if (active_deadline_ > 0.0 && seconds_since_start() >= active_deadline_) {
      hit_time_budget_ = true;
      break;
    }
    if (cfg_.watchdog_no_progress_execs != 0 &&
        stats.executions - last_progress_exec >= cfg_.watchdog_no_progress_execs) {
      stats.watchdog_fired = true;
      break;
    }
    if (!trail_.advance()) {
      stats.exhausted = true;
      break;
    }
  }
  const auto dfs_t1 = std::chrono::steady_clock::now();
  obs_.timer("engine.dfs_phase")
      .add_ns(static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(dfs_t1 - dfs_t0)
              .count()));

  // Phase 2: fail-safe degradation. Budget is gone but the space is not
  // covered — switch to seeded random-walk sampling instead of stopping
  // cold, so the remaining time still hunts for counterexamples.
  bool degraded = can_degrade &&
                  (cfg_.sampling_only || resume_sampling ||
                   (!stopped && !stats.exhausted && !stats.hit_execution_cap &&
                    (hit_time_budget_ || hit_memory_budget_ ||
                     stats.watchdog_fired)));
  if (degraded) {
    if (hit_memory_budget_) arena_.release();  // restart from a small footprint
    active_deadline_ = cfg_.time_budget_seconds;  // sampling gets the remainder
    trail_.set_mode(Trail::Mode::kRandom, &rng_);
    // A budget exhaustion is itself a checkpoint-worthy event: the DFS
    // frontier is gone for good, so a kill during sampling must resume
    // into the sampling phase, not redo the DFS.
    if (!resume_sampling) {
      write_checkpoint(Checkpoint::Phase::kSampling, stats, last_progress_exec);
    }
    while (stats.sampled < cfg_.sample_executions) {
      if (active_deadline_ > 0.0 && seconds_since_start() >= active_deadline_) break;
      exec_index_ = stats.executions;
      std::uint64_t violations_before = violations_total_;
      run_one(test);
      ++stats.sampled;
      bool keep_going = tally_execution(stats);
      if (progress_) beat_progress(stats, "sampling");
      if (cfg_.checkpoint_every_execs != 0 &&
          stats.executions % cfg_.checkpoint_every_execs == 0) {
        write_checkpoint(Checkpoint::Phase::kSampling, stats,
                         last_progress_exec);
      }
      if (outcome_ == Outcome::kCrash) {
        stats.stopped_early = true;
        break;
      }
      if (cfg_.stop_on_first_violation && violations_total_ > violations_before) {
        stats.stopped_early = true;
        break;
      }
      if (!keep_going) {
        stats.stopped_early = true;
        break;
      }
    }
    trail_.set_mode(Trail::Mode::kDfs);
    obs_.timer("engine.sampling_phase")
        .add_ns(static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::steady_clock::now() - dfs_t1)
                .count()));
  }

  stats.hit_time_budget = hit_time_budget_;
  stats.hit_memory_budget = hit_memory_budget_;
  stats.violations_total = violations_total_;
  // The verdict: proved, disproved, or merely sampled. "Exhaustive" is
  // relative to the configured bounds (max_steps, stale_read_bound), which
  // are part of the modeled semantics; an internal engine error taints the
  // proof because the discarded execution was never checked.
  if (violations_total_ > 0) {
    stats.verdict = Verdict::kFalsified;
  } else if (stats.exhausted && stats.engine_fatal_execs == 0) {
    stats.verdict = Verdict::kVerifiedExhaustive;
  } else {
    stats.verdict = Verdict::kInconclusive;
  }
  stats.seconds = seconds_since_start();
  obs_.timer("engine.explore")
      .add_ns(static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              std::chrono::steady_clock::now() - t0_)
              .count()));
  progress_.reset();
  active_deadline_ = 0.0;
  restore_crash_handlers();
  g_engine = nullptr;
  harness::Backend::set_current(nullptr);
  return stats;
}

double Engine::frontier_fraction() const {
  // The trail is a mixed-radix numeral: digit i has base num_i and value
  // chosen_i. Its fractional value is the share of the DFS tree strictly
  // before the current leaf — a cheap coverage estimate (exact when
  // subtree sizes are uniform). frontier_fraction_of already clamps to
  // [0, 1] and is monotone across advance(); the floor additionally pins
  // monotonicity across restore()/resume boundaries within one explore().
  double frac = frontier_fraction_of(trail_.raw());
  if (frac < frontier_frac_floor_) return frontier_frac_floor_;
  frontier_frac_floor_ = frac;
  return frac;
}

void Engine::beat_progress(const ExplorationStats& stats, const char* phase) {
  double budget_left = -1.0;
  if (active_deadline_ > 0.0) {
    budget_left = active_deadline_ - seconds_since_start();
    if (budget_left < 0.0) budget_left = 0.0;
  }
  const bool dfs = phase[0] == 'd';
  progress_->maybe_beat(phase, stats.executions, trail_.depth(),
                        dfs ? frontier_fraction() : -1.0, budget_left);
}

bool Engine::replay(const std::vector<Choice>& saved, const TestFn& test,
                    bool strict, std::string* divergence) {
  if (g_engine != nullptr) fatal("replay during an active exploration");
  g_engine = this;
  harness::Backend::set_current(this);
  violations_.clear();
  violations_total_ = 0;
  exec_index_ = 0;
  install_crash_handlers();
  trail_.restore(saved, strict);
  run_one(test);
  // Re-run the attached layer's completion check (the spec checker re-files
  // its violation through report_violation), so a replayed spec-level
  // finding reproduces just like a built-in one.
  if (listener_ != nullptr && outcome_ == Outcome::kComplete) {
    (void)listener_->on_execution_complete(*this);
  }
  bool ok = true;
  if (strict) {
    if (trail_.replay_diverged()) {
      ok = false;
      if (divergence != nullptr) *divergence = trail_.divergence();
    } else if (!trail_.fully_consumed()) {
      ok = false;
      if (divergence != nullptr) {
        *divergence = "execution finished without consuming the whole trail (" +
                      std::to_string(saved.size()) +
                      " recorded choices); the trail was recorded against a "
                      "different test or build";
      }
    }
  }
  restore_crash_handlers();
  g_engine = nullptr;
  harness::Backend::set_current(nullptr);
  return ok;
}

void Engine::reset_execution_state() {
  locs_.clear();
  sc_view_.clear();
  sc_counter_ = 0;
  for (int i = 0; i < spawned_; ++i) {
    Thread& t = threads_[static_cast<std::size_t>(i)];
    t.status = ThreadStatus::kAbsent;
    t.body = nullptr;
    t.waiting_join = -1;
    t.waiting_mutex = nullptr;
  }
  spawned_ = 0;
  current_ = -1;
  steps_ = 0;
  outcome_ = Outcome::kRunning;
  had_builtin_ = false;
  abandoned_ = false;
  fatal_abandon_ = false;
  trace_.clear();
  sleep_.clear();
  if (rf_mode_) {
    rf_.reset_execution();
    rf_check_.reset();
  }
  arena_.reset();
  trail_.begin_execution();
}

void Engine::run_one(const TestFn& test) {
  reset_execution_state();
  if (listener_ != nullptr) listener_->on_execution_begin(*this);
  // Sleep sets justify pruning by "a sibling DFS branch covers this";
  // in the random-walk sampling phase no systematic siblings exist, so
  // the reduction is unsound there (it would discard whole samples).
  const bool use_sleep_sets =
      cfg_.enable_sleep_sets && trail_.mode() == Trail::Mode::kDfs;

  Thread& root = threads_[0];
  root.body = [this, &test]() {
    Exec x(*this);
    test(x);
  };
  root.mm.reset();
  root.pending = PendingOp{};
  root.status = ThreadStatus::kRunnable;
  root.fib->reset([this]() {
    threads_[0].body();
    thread_exit();
  });
  spawned_ = 1;

  // Sized from spawned_, not a fixed cap: a hard `enabled[64]` here once
  // silently dropped runnable threads 65+, making exploration incomplete
  // with no diagnostic. Hoisted out of the loop so the per-step cost is a
  // clear(), not an allocation.
  std::vector<int> enabled;
  std::vector<int> cands;
  for (;;) {
    enabled.clear();
    enabled.reserve(static_cast<std::size_t>(spawned_));
    int n = 0;
    bool any_yielded = false;
    bool any_blocked = false;
    bool any_wait_read = false;
    for (int i = 0; i < spawned_; ++i) {
      switch (threads_[static_cast<std::size_t>(i)].status) {
        case ThreadStatus::kRunnable:
          enabled.push_back(i);
          ++n;
          break;
        case ThreadStatus::kYielded:
          any_yielded = true;
          break;
        case ThreadStatus::kBlockedJoin:
        case ThreadStatus::kBlockedMutex:
          any_blocked = true;
          break;
        case ThreadStatus::kBlockedRead:
          any_wait_read = true;
          break;
        case ThreadStatus::kDone:
        case ThreadStatus::kAbsent:
          break;
      }
    }

    if (n == 0) {
      if (any_wait_read) {
        // A load chose to read a message no remaining thread will write:
        // this rf class is infeasible. Takes priority over deadlock and
        // livelock classification — the non-wait sibling branch re-explores
        // this state with the load resolved, so real deadlocks/livelocks
        // are still reported there.
        outcome_ = Outcome::kPrunedInfeasibleRf;
      } else if (!any_yielded && !any_blocked) {
        outcome_ = Outcome::kComplete;
      } else if (any_yielded) {
        // Only spinners (and threads waiting on them) remain: an unfair
        // execution a sibling branch explores fairly. Prune.
        outcome_ = Outcome::kPrunedLivelock;
      } else {
        report_violation(ViolationKind::kDeadlock,
                         "all live threads are blocked");
        outcome_ = Outcome::kBuiltinViolation;
      }
      break;
    }

    if (++steps_ > cfg_.max_steps) {
      outcome_ = Outcome::kPrunedBound;
      break;
    }
    // Budget enforcement mid-execution: a single runaway execution must
    // not blow past the wall-clock or memory budget before the
    // between-executions check ever runs. Checked every 64 visible ops to
    // keep the clock syscall off the hot path.
    if ((steps_ & 63u) == 0 && check_budgets()) {
      outcome_ = Outcome::kPrunedBound;
      break;
    }

    // Two sound reductions govern the schedule choice:
    //  1. Invisible transitions: a thread parked at a thread-local
    //     (internal) operation always goes first without branching — such
    //     operations commute with every operation of every other thread,
    //     now and in the future.
    //  2. Sleep sets: once a thread's alternative has been fully explored
    //     at this choice point, siblings run with that thread asleep until
    //     a conflicting operation executes; if every runnable thread is
    //     asleep, the remainder of this execution is covered by an
    //     already-explored branch and is pruned as redundant.
    int pick = -1;
    for (int i = 0; i < n; ++i) {
      const PendingOp& p = threads_[static_cast<std::size_t>(enabled[i])].pending;
      if (p.cls == PendingOp::Class::kInternal) {
        pick = enabled[i];
        break;
      }
    }
    // rf mode, third sound reduction: a deferred (non-seq_cst) load never
    // branches the schedule. Its only globally visible effect is which
    // message it observes, and that is exactly what its kReadsFrom choice
    // (plus the trailing wait alternative, standing in for every later
    // placement) enumerates — so it runs greedily at its earliest
    // placement. Seq_cst loads keep schedule branching: they read and
    // advance the location's SC floors, which other threads observe.
    if (pick < 0 && rf_mode_) {
      for (int i = 0; i < n; ++i) {
        const PendingOp& p =
            threads_[static_cast<std::size_t>(enabled[i])].pending;
        if (p.cls == PendingOp::Class::kRead && rf_defers_load(p.order)) {
          pick = enabled[i];
          m_rf_deferred_reads_->add();
          break;
        }
      }
    }
    if (pick < 0) {
      cands.clear();
      int nc = 0;
      for (int i = 0; i < n; ++i) {
        bool asleep = false;
        if (use_sleep_sets) {
          for (const SleepEntry& e : sleep_) {
            if (e.tid == enabled[i]) {
              asleep = true;
              break;
            }
          }
        }
        if (!asleep) {
          cands.push_back(enabled[i]);
          ++nc;
        }
      }
      if (nc == 0) {
        outcome_ = Outcome::kPrunedRedundant;
        break;
      }
      if (nc > 1) m_sched_choice_points_->add();
      std::uint32_t k = trail_.choose(ChoiceKind::kSchedule,
                                      static_cast<std::uint32_t>(nc));
      pick = cands[k];
      if (use_sleep_sets) {
        for (std::uint32_t i = 0; i < k; ++i) {
          sleep_.push_back(SleepEntry{
              cands[i], threads_[static_cast<std::size_t>(cands[i])].pending});
        }
      }
    }
    // Executing `pick`'s operation wakes every sleeper it conflicts with
    // (the kSleepSetNeverWakes sabotage hook skips the conflict wake-ups,
    // turning the reduction unsound; the fuzzer must catch that).
    {
      const PendingOp& ex = threads_[static_cast<std::size_t>(pick)].pending;
      const bool wake_conflicts =
          cfg_.unsound_hook != UnsoundHook::kSleepSetNeverWakes;
      std::erase_if(sleep_, [&](const SleepEntry& e) {
        return e.tid == pick || (wake_conflicts && conflicts(e.op, ex));
      });
    }
    current_ = pick;
    fiber::Fiber& fib = *threads_[static_cast<std::size_t>(pick)].fib;
    if (crash_handlers_active_) {
      // Containment window: only test-body code runs between this switch
      // and the fiber's switch back. A fatal signal inside it siglongjmps
      // here (onto the scheduler's native stack, abandoning the fiber) and
      // becomes a kCrash violation instead of killing the process.
      if (sigsetjmp(g_crash_jmp, 1) == 0) {
        g_crash_armed = 1;
        fib.switch_to(sched_fiber_);
        g_crash_armed = 0;
      } else {
        contain_crash(static_cast<int>(g_crash_sig), g_crash_addr);
        break;
      }
    } else {
      fib.switch_to(sched_fiber_);
    }

    if (abandoned_) {
      outcome_ = fatal_abandon_ ? Outcome::kEngineFatal : Outcome::kBuiltinViolation;
      break;
    }
  }

  // Defense in depth for rf-class representatives: the operational
  // construction only ever records constraint edges from earlier-executed
  // to later-executed events, so a cycle here means the engine itself
  // mis-built the class. Discard the execution as an internal error (which
  // also taints any exhaustive-proof verdict) rather than checking it.
  if (rf_mode_ && outcome_ == Outcome::kComplete) {
    std::string why;
    if (!rf_check_.validate(&why)) {
      report_violation(ViolationKind::kEngineFatal,
                       "rf-class constraints admit no linearization: " + why);
      outcome_ = Outcome::kEngineFatal;
    }
  }
}

// ---------------------------------------------------------------------------
// Scheduling primitives (called on modeled-thread fibers)
// ---------------------------------------------------------------------------

bool Engine::conflicts(const PendingOp& a, const PendingOp& b) {
  using C = PendingOp::Class;
  if (a.cls == C::kInternal || b.cls == C::kInternal) return false;
  if (a.cls == C::kMutex || b.cls == C::kMutex) {
    return a.cls == C::kMutex && b.cls == C::kMutex && a.mutex == b.mutex;
  }
  if (a.cls == C::kScFence || b.cls == C::kScFence) return true;
  return a.loc == b.loc && (a.cls == C::kWrite || b.cls == C::kWrite);
}

void Engine::park(PendingOp op) {
  cur().pending = op;
  switch_to_scheduler();
}

void Engine::switch_to_scheduler() {
  sched_fiber_.switch_to(*threads_[static_cast<std::size_t>(current_)].fib);
}

void Engine::block(ThreadStatus why) {
  cur().status = why;
  switch_to_scheduler();
}

void Engine::abandon_execution() {
  abandoned_ = true;
  switch_to_scheduler();
  fatal("abandoned fiber was resumed");
}

void Engine::thread_exit() {
  int tid = current_;
  Thread& t = cur();
  // A final event so the join edge covers every plain access the thread
  // performed after its last visible operation (race-detector epochs are
  // pos+1-based).
  bump_event(tid);
  t.status = ThreadStatus::kDone;
  record(TraceEvent::Kind::kThreadEnd, MemoryOrder::relaxed, TraceEvent::kNoLoc, 0);
  for (int i = 0; i < spawned_; ++i) {
    Thread& u = threads_[static_cast<std::size_t>(i)];
    if (u.status == ThreadStatus::kBlockedJoin && u.waiting_join == tid) {
      u.status = ThreadStatus::kRunnable;
    }
  }
  t.fib->mark_finished();
  switch_to_scheduler();
  fatal("finished fiber was resumed");
}

void Engine::bump_event(int tid) {
  ThreadMMState& t = threads_[static_cast<std::size_t>(tid)].mm;
  ++t.pos;
  t.cur.vc.set(static_cast<std::size_t>(tid), t.pos);
}

void Engine::wake_yielded(int except) {
  for (int i = 0; i < spawned_; ++i) {
    if (i == except) continue;
    Thread& u = threads_[static_cast<std::size_t>(i)];
    if (u.status == ThreadStatus::kYielded) u.status = ThreadStatus::kRunnable;
  }
}

int Engine::spawn_thread(std::function<void()> body) {
  park(PendingOp{});
  int parent = current_;
  if (spawned_ >= cfg_.max_threads) {
    engine_fatal("too many modeled threads (max_threads=" +
                 std::to_string(cfg_.max_threads) + ")");
  }
  int tid = spawned_++;
  Thread& th = threads_[static_cast<std::size_t>(tid)];
  th.body = std::move(body);
  th.mm.reset();
  th.waiting_join = -1;
  th.waiting_mutex = nullptr;
  // A fresh thread runs setup code until its first park: internal class
  // (also clears the previous execution's stale pending op, which would
  // otherwise make replays diverge).
  th.pending = PendingOp{};
  bump_event(parent);
  th.mm.cur = threads_[static_cast<std::size_t>(parent)].mm.cur;  // hb: spawn edge
  th.status = ThreadStatus::kRunnable;
  th.fib->reset([this, tid]() {
    threads_[static_cast<std::size_t>(tid)].body();
    thread_exit();
  });
  threads_[static_cast<std::size_t>(parent)].mm.last_sc_index = 0;
  record(TraceEvent::Kind::kSpawn, MemoryOrder::relaxed, TraceEvent::kNoLoc,
         static_cast<std::uint64_t>(tid));
  return tid;
}

void Engine::join_thread(int tid) {
  park(PendingOp{});
  assert(tid >= 0 && tid < spawned_ && tid != current_);
  Thread& target = threads_[static_cast<std::size_t>(tid)];
  while (target.status != ThreadStatus::kDone) {
    cur().waiting_join = tid;
    block(ThreadStatus::kBlockedJoin);
  }
  cur().waiting_join = -1;
  bump_event(current_);
  cur_mm().cur.join(target.mm.cur);  // hb: join edge
  cur_mm().last_sc_index = 0;
  record(TraceEvent::Kind::kJoin, MemoryOrder::relaxed, TraceEvent::kNoLoc,
         static_cast<std::uint64_t>(tid));
}

void Engine::yield_thread() {
  park(PendingOp{});
  record(TraceEvent::Kind::kYield, MemoryOrder::relaxed, TraceEvent::kNoLoc, 0);
  cur().status = ThreadStatus::kYielded;
  switch_to_scheduler();
}

// ---------------------------------------------------------------------------
// Atomic operations
// ---------------------------------------------------------------------------

std::uint32_t Engine::new_location(const char* name, bool initialized,
                                   std::uint64_t init_value) {
  if (g_engine != this || current_ < 0) {
    fatal("Atomic/Var constructed outside a modeled execution");
  }
  auto id = static_cast<std::uint32_t>(locs_.size());
  locs_.emplace_back(name);
  Message init;
  init.value = init_value;
  init.timestamp = 0;
  init.writer = -1;
  init.uninit = !initialized;
  locs_.back().history.push_back(std::move(init));
  return id;
}

void Engine::apply_read_sync(ThreadMMState& t, const Message& m, MemoryOrder o) {
  if (is_acquire(o)) {
    t.cur.join(m.sync);
  } else {
    // A later acquire fence turns this relaxed read into synchronization.
    t.acq_pending.join(m.sync);
  }
}

std::uint32_t Engine::pick_read(std::uint32_t loc, MemoryOrder o,
                                std::uint64_t exclude_value, bool use_exclude,
                                bool* has_option, std::uint32_t min_ts,
                                bool offer_wait, bool* chose_wait) {
  Location& L = locs_[loc];
  ThreadMMState& t = cur_mm();
  std::uint32_t floor = t.cur.view.get(loc);
  if (is_seq_cst(o) &&
      cfg_.unsound_hook != UnsoundHook::kScLoadIgnoresFloor) {
    floor = std::max(floor, L.sc_write_floor);
    floor = std::max(floor, L.sc_read_floor);
  }
  if (min_ts > floor) floor = min_ts;
  std::uint32_t hi = L.last_ts();
  assert(floor <= hi);
  bool budget = t.stale_reads < cfg_.stale_read_bound;

  std::vector<std::uint32_t>& cands = rf_scratch_;
  cands.clear();
  std::uint32_t n = 0;
  for (std::uint32_t i = hi;; --i) {
    const Message& m = L.history[i];
    bool stale = i != hi;
    bool excluded = use_exclude && m.value == exclude_value;
    if (!excluded && (!stale || budget)) {
      cands.push_back(i);
      ++n;
    }
    if (i == floor) break;
  }

  // rf mode: one trailing alternative defers the read past the current
  // history — "observe a message some thread has not written yet". It
  // comes after every direct candidate so the all-greedy execution is the
  // DFS's leftmost leaf.
  const std::uint32_t extra = offer_wait ? 1u : 0u;
  if (n + extra == 0) {
    *has_option = false;
    return 0;
  }
  m_rf_choice_points_->add();
  m_rf_candidates_->add(n + extra);
  m_rf_fanout_->record(n + extra);
  std::uint32_t k = trail_.choose(ChoiceKind::kReadsFrom, n + extra);
  if (offer_wait && k == n) {
    m_rf_wait_choices_->add();
    *chose_wait = true;
    *has_option = true;
    return 0;
  }
  std::uint32_t idx = cands[k];
  if (idx != hi) ++t.stale_reads;
  *has_option = true;
  return idx;
}

std::uint64_t Engine::atomic_load(std::uint32_t loc, MemoryOrder o) {
  if (cfg_.strengthen_to_sc) o = MemoryOrder::seq_cst;
  park(PendingOp{PendingOp::Class::kRead, loc, nullptr, o});
  // rf mode: a deferred load may pick the wait alternative, block until a
  // store appends a new message, then re-pick among only the messages
  // newer than the ones it declined (wait_floor) — possibly waiting again.
  // Each iteration is one kReadsFrom trail digit, so replay and resume
  // walk the same loop deterministically.
  const bool deferred = rf_mode_ && rf_defers_load(o);
  bool has = false;
  std::uint32_t idx = 0;
  for (;;) {
    std::uint32_t min_ts =
        deferred && rf_.waiting(current_) ? rf_.wait_floor(current_) : 0;
    bool chose_wait = false;
    idx = pick_read(loc, o, 0, false, &has, min_ts, deferred, &chose_wait);
    if (!chose_wait) break;
    rf_.begin_wait(current_, loc, locs_[loc].last_ts());
    block(ThreadStatus::kBlockedRead);
  }
  if (deferred && rf_.waiting(current_)) rf_.end_wait(current_);
  assert(has);
  Location& L = locs_[loc];
  const Message& m = L.history[idx];
  ThreadMMState& t = cur_mm();
  if (m.uninit) {
    report_violation(ViolationKind::kUninitializedLoad,
                     std::string("load of '") + L.name +
                         "' observes uninitialized value");
    abandon_execution();
  }
  bump_event(current_);
  t.cur.view.raise(loc, idx);
  apply_read_sync(t, m, o);
  if (is_seq_cst(o)) {
    L.sc_read_floor = std::max(L.sc_read_floor, idx);
    t.last_sc_index = next_sc_index();
  } else {
    t.last_sc_index = 0;
  }
  if (rf_mode_) rf_check_.on_read(current_, loc, idx, is_seq_cst(o));
  record(TraceEvent::Kind::kLoad, o, loc, m.value);
  return m.value;
}

void Engine::append_store(std::uint32_t loc, std::uint64_t v, MemoryOrder o,
                          bool is_rmw) {
  Location& L = locs_[loc];
  ThreadMMState& t = cur_mm();
  int tid = current_;

  bump_event(tid);
  auto ts = static_cast<std::uint32_t>(L.history.size());
  t.cur.view.set(loc, ts);

  // C++11 release-sequence contiguity: a non-RMW store by thread T breaks
  // every live release sequence not headed by T.
  if (!is_rmw) {
    std::erase_if(L.rs_heads,
                  [tid](const ReleaseSeqHead& h) { return h.thread != tid; });
  }

  Message m;
  m.value = v;
  m.timestamp = ts;
  m.writer = tid;
  m.writer_pos = t.pos;

  support::Timestamps base;
  bool heads_own = false;
  if (is_release(o)) {
    base = t.cur;
    heads_own = true;
  } else if (t.has_rel_fence) {
    base = t.rel_fence;  // fence-promoted (hypothetical) release sequence
    heads_own = true;
  }
  m.sync = base;
  for (const ReleaseSeqHead& h : L.rs_heads) m.sync.join(h.sync);

  if (is_seq_cst(o)) {
    L.sc_write_floor = ts;
    sc_view_.raise(loc, ts);
    m.sc_index = next_sc_index();
    t.last_sc_index = m.sc_index;
  } else {
    t.last_sc_index = 0;
  }

  L.history.push_back(std::move(m));
  if (heads_own) L.rs_heads.push_back(ReleaseSeqHead{tid, std::move(base)});
  if (rf_mode_) {
    rf_check_.on_write(tid, loc, ts, is_seq_cst(o));
    // Wake every load waiting on this location: the message it deferred to
    // may be this one (its re-pick is restricted to ts > wait floor).
    if (rf_.any_waiting()) {
      rf_woken_scratch_.clear();
      rf_.notify_store(loc, rf_woken_scratch_);
      for (int w : rf_woken_scratch_) {
        Thread& u = threads_[static_cast<std::size_t>(w)];
        if (u.status == ThreadStatus::kBlockedRead) {
          u.status = ThreadStatus::kRunnable;
        }
      }
    }
  }
  wake_yielded(tid);
}

void Engine::atomic_store(std::uint32_t loc, std::uint64_t v, MemoryOrder o) {
  if (cfg_.strengthen_to_sc) o = MemoryOrder::seq_cst;
  park(PendingOp{PendingOp::Class::kWrite, loc, nullptr});
  append_store(loc, v, o, /*is_rmw=*/false);
  record(TraceEvent::Kind::kStore, o, loc, v);
}

std::uint64_t Engine::atomic_rmw(std::uint32_t loc, MemoryOrder o,
                                 std::uint64_t (*op)(std::uint64_t, std::uint64_t),
                                 std::uint64_t operand) {
  if (cfg_.strengthen_to_sc) o = MemoryOrder::seq_cst;
  park(PendingOp{PendingOp::Class::kWrite, loc, nullptr});
  Location& L = locs_[loc];
  // RMW atomicity: the write is mo-adjacent to the read, so under
  // append-order mo an RMW always reads the latest message.
  const Message& tail = L.latest();
  if (tail.uninit) {
    report_violation(ViolationKind::kUninitializedLoad,
                     std::string("rmw on uninitialized '") + L.name + "'");
    abandon_execution();
  }
  std::uint64_t old = tail.value;
  ThreadMMState& t = cur_mm();
  apply_read_sync(t, tail, o);
  t.cur.view.raise(loc, tail.timestamp);
  if (rf_mode_) rf_check_.on_read(current_, loc, tail.timestamp, is_seq_cst(o));
  append_store(loc, op(old, operand), o, /*is_rmw=*/true);
  record(TraceEvent::Kind::kRmw, o, loc, old);
  return old;
}

std::uint64_t Engine::atomic_exchange(std::uint32_t loc, std::uint64_t v,
                                      MemoryOrder o) {
  return atomic_rmw(
      loc, o, [](std::uint64_t, std::uint64_t nv) { return nv; }, v);
}

bool Engine::atomic_cas(std::uint32_t loc, std::uint64_t& expected,
                        std::uint64_t desired, MemoryOrder success,
                        MemoryOrder failure) {
  if (cfg_.strengthen_to_sc) {
    success = MemoryOrder::seq_cst;
    failure = MemoryOrder::seq_cst;
  }
  park(PendingOp{PendingOp::Class::kWrite, loc, nullptr});
  Location& L = locs_[loc];
  ThreadMMState& t = cur_mm();
  const bool can_succeed = !L.latest().uninit && L.latest().value == expected;
  const bool tail_uninit = L.latest().uninit;

  // Failure candidates: any coherence-eligible message whose value differs
  // from `expected` (a failed CAS is just an atomic load).
  std::uint32_t floor = t.cur.view.get(loc);
  if (is_seq_cst(failure) &&
      cfg_.unsound_hook != UnsoundHook::kScLoadIgnoresFloor) {
    floor = std::max(floor, L.sc_write_floor);
    floor = std::max(floor, L.sc_read_floor);
  }
  std::uint32_t hi = L.last_ts();
  bool budget = t.stale_reads < cfg_.stale_read_bound;
  std::vector<std::uint32_t>& fails = rf_scratch_;
  fails.clear();
  std::uint32_t nf = 0;
  for (std::uint32_t i = hi;; --i) {
    const Message& m = L.history[i];
    bool stale = i != hi;
    if (m.value != expected && (!stale || budget)) {
      fails.push_back(i);
      ++nf;
    }
    if (i == floor) break;
  }

  std::uint32_t total = (can_succeed ? 1u : 0u) + nf;
  if (total == 0) {
    // Tail holds `expected` but is uninitialized, or no candidate at all.
    report_violation(ViolationKind::kUninitializedLoad,
                     std::string("cas on uninitialized '") + L.name + "'");
    abandon_execution();
  }
  m_rf_choice_points_->add();
  m_rf_candidates_->add(total);
  m_rf_fanout_->record(total);
  std::uint32_t k = trail_.choose(ChoiceKind::kReadsFrom, total);

  if (can_succeed && k == 0) {
    const Message& tail = L.latest();
    apply_read_sync(t, tail, success);
    t.cur.view.raise(loc, tail.timestamp);
    if (rf_mode_) {
      rf_check_.on_read(current_, loc, tail.timestamp, is_seq_cst(success));
    }
    append_store(loc, desired, success, /*is_rmw=*/true);
    record(TraceEvent::Kind::kRmw, success, loc, desired);
    return true;
  }

  std::uint32_t idx = fails[can_succeed ? k - 1 : k];
  const Message& m = L.history[idx];
  if (m.uninit || tail_uninit) {
    report_violation(ViolationKind::kUninitializedLoad,
                     std::string("cas-fail load of uninitialized '") + L.name + "'");
    abandon_execution();
  }
  if (idx != hi) ++t.stale_reads;
  bump_event(current_);
  t.cur.view.raise(loc, idx);
  apply_read_sync(t, m, failure);
  if (is_seq_cst(failure)) {
    L.sc_read_floor = std::max(L.sc_read_floor, idx);
    t.last_sc_index = next_sc_index();
  } else {
    t.last_sc_index = 0;
  }
  expected = m.value;
  if (rf_mode_) rf_check_.on_read(current_, loc, idx, is_seq_cst(failure));
  record(TraceEvent::Kind::kCasFail, failure, loc, m.value);
  return false;
}

void Engine::atomic_thread_fence(MemoryOrder o) {
  if (cfg_.strengthen_to_sc) o = MemoryOrder::seq_cst;
  park(PendingOp{is_seq_cst(o) ? PendingOp::Class::kScFence
                               : PendingOp::Class::kInternal,
                 0, nullptr});
  ThreadMMState& t = cur_mm();
  bump_event(current_);
  if (is_acquire(o)) {
    t.cur.join(t.acq_pending);
    t.acq_pending.clear();
  }
  if (is_seq_cst(o)) {
    // Coherence propagation along the total SC order; hb still requires
    // the fence-release/fence-acquire pairing below.
    t.cur.view.join(sc_view_);
    sc_view_.join(t.cur.view);
    t.last_sc_index = next_sc_index();
    if (rf_mode_) rf_check_.on_fence(current_);
  } else {
    t.last_sc_index = 0;
  }
  if (is_release(o)) {
    t.rel_fence = t.cur;
    t.has_rel_fence = true;
  }
  record(TraceEvent::Kind::kFence, o, TraceEvent::kNoLoc, 0);
}

// ---------------------------------------------------------------------------
// Plain accesses (race detection) and mutexes
// ---------------------------------------------------------------------------

void Engine::plain_read(RaceShadow& s) {
  ThreadMMState& t = cur_mm();
  int tid = current_;
  if (s.w_thread >= 0 && s.w_thread != tid &&
      t.cur.vc.get(static_cast<std::size_t>(s.w_thread)) < s.w_pos) {
    report_violation(ViolationKind::kDataRace,
                     std::string("read of '") + s.name + "' by T" +
                         std::to_string(tid) + " races with write by T" +
                         std::to_string(s.w_thread));
    abandon_execution();
  }
  s.reads.raise(static_cast<std::size_t>(tid), t.pos + 1);
}

void Engine::plain_write(RaceShadow& s) {
  ThreadMMState& t = cur_mm();
  int tid = current_;
  if (s.w_thread >= 0 && s.w_thread != tid &&
      t.cur.vc.get(static_cast<std::size_t>(s.w_thread)) < s.w_pos) {
    report_violation(ViolationKind::kDataRace,
                     std::string("write of '") + s.name + "' by T" +
                         std::to_string(tid) + " races with write by T" +
                         std::to_string(s.w_thread));
    abandon_execution();
  }
  for (std::size_t u = 0; u < s.reads.stored_size(); ++u) {
    if (static_cast<int>(u) == tid) continue;
    if (s.reads.get(u) > t.cur.vc.get(u)) {
      report_violation(ViolationKind::kDataRace,
                       std::string("write of '") + s.name + "' by T" +
                           std::to_string(tid) + " races with read by T" +
                           std::to_string(u));
      abandon_execution();
    }
  }
  s.w_thread = tid;
  s.w_pos = t.pos + 1;
  s.reads.clear();
}

void Engine::mutex_lock(MutexState& m) {
  park(PendingOp{PendingOp::Class::kMutex, 0, &m});
  while (m.holder != -1) {
    cur().waiting_mutex = &m;
    block(ThreadStatus::kBlockedMutex);
    cur().waiting_mutex = nullptr;
  }
  m.holder = current_;
  bump_event(current_);
  cur_mm().cur.join(m.release_ts);  // sw: previous unlock -> this lock
  cur_mm().last_sc_index = 0;
  record(TraceEvent::Kind::kLock, MemoryOrder::acquire, TraceEvent::kNoLoc, 0);
}

void Engine::mutex_unlock(MutexState& m) {
  park(PendingOp{PendingOp::Class::kMutex, 0, &m});
  if (m.holder != current_) {
    engine_fatal(std::string("mutex '") + m.name + "' unlocked by non-owner T" +
                 std::to_string(current_));
  }
  bump_event(current_);
  m.release_ts = cur_mm().cur;
  m.holder = -1;
  cur_mm().last_sc_index = 0;
  for (int i = 0; i < spawned_; ++i) {
    Thread& u = threads_[static_cast<std::size_t>(i)];
    if (u.status == ThreadStatus::kBlockedMutex && u.waiting_mutex == &m) {
      u.status = ThreadStatus::kRunnable;
    }
  }
  wake_yielded(current_);
  record(TraceEvent::Kind::kUnlock, MemoryOrder::release, TraceEvent::kNoLoc, 0);
}

}  // namespace cds::mc
