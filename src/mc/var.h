// Modeled plain (non-atomic) shared variable.
//
// Accesses are checked by the built-in FastTrack-style race detector: two
// conflicting accesses not ordered by happens-before are a data race (which
// the C/C++11 standard makes undefined behavior, and which CDSChecker's
// built-in checks report). Accesses are invisible to the scheduler — race
// detection via clocks is schedule-insensitive.
#ifndef CDS_MC_VAR_H
#define CDS_MC_VAR_H

#include "mc/engine.h"

namespace cds::mc {

template <typename T>
class Var {
 public:
  explicit Var(const char* name = "var") { shadow_.name = name; }

  Var(T init, const char* name = "var") : v_(init) { shadow_.name = name; }

  Var(const Var&) = delete;
  Var& operator=(const Var&) = delete;

  [[nodiscard]] T read() const {
    harness::Backend::current()->plain_read(shadow_);
    return v_;
  }

  void write(T v) {
    harness::Backend::current()->plain_write(shadow_);
    v_ = v;
  }

 private:
  T v_{};
  mutable RaceShadow shadow_;
};

}  // namespace cds::mc

#endif  // CDS_MC_VAR_H
