// Atomic locations and their message histories.
//
// Following the view-based operational presentation of C/C++11 (see
// DESIGN.md), every store appends a timestamped Message; modification order
// for a location is its append order in the explored schedule, and loads
// may non-deterministically observe any message at or above the loading
// thread's coherence view of the location.
#ifndef CDS_MC_LOCATION_H
#define CDS_MC_LOCATION_H

#include <cstdint>
#include <vector>

#include "support/vector_clock.h"

namespace cds::mc {

struct Message {
  std::uint64_t value = 0;
  // Timestamp == index in Location::history (mo position).
  std::uint32_t timestamp = 0;
  // Writing thread and its per-thread event position (for hb queries and
  // diagnostics). writer < 0 marks the initialization pseudo-store.
  std::int32_t writer = -1;
  std::uint32_t writer_pos = 0;
  // What an acquire reader of this message synchronizes with: the join of
  // the release clocks of every release operation whose release sequence
  // contains this message (plus fence-promoted clocks).
  support::Timestamps sync;
  // Nonzero iff the store was seq_cst; value is its position in the global
  // SC order (used by the spec checker's `r = hb ∪ sc` relation).
  std::uint32_t sc_index = 0;
  // True for the pre-initialization pseudo-store of a default-constructed
  // atomic; loads observing it trigger the built-in uninitialized-load
  // check, as in CDSChecker.
  bool uninit = false;
};

// A live release-sequence head: a release-store (or release-fence-promoted
// store) whose release sequence still extends to the end of this location's
// history. C++11 contiguity: a non-RMW store by a different thread breaks
// every head not owned by that thread.
struct ReleaseSeqHead {
  std::int32_t thread;
  support::Timestamps sync;
};

struct Location {
  explicit Location(const char* nm) : name(nm) {}

  const char* name;
  std::vector<Message> history;
  // Largest timestamp written by a seq_cst store / observed by a seq_cst
  // load; an SC load's coherence floor includes these (C++11 rule: an SC
  // read must not observe anything older than the last SC write in S).
  std::uint32_t sc_write_floor = 0;
  std::uint32_t sc_read_floor = 0;
  std::vector<ReleaseSeqHead> rs_heads;

  [[nodiscard]] const Message& latest() const { return history.back(); }
  [[nodiscard]] std::uint32_t last_ts() const {
    return static_cast<std::uint32_t>(history.size()) - 1;
  }
};

}  // namespace cds::mc

#endif  // CDS_MC_LOCATION_H
