// Exploration configuration.
#ifndef CDS_MC_CONFIG_H
#define CDS_MC_CONFIG_H

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>

namespace cds::mc {

// Deliberately unsound engine variants, reachable only through the
// test-only Config hook below. The fuzzer's differential oracles
// (src/fuzz/oracle.h) must catch each of them; they exist so the
// self-validation layer can prove it would notice a real soundness
// regression of the same shape.
enum class UnsoundHook : std::uint8_t {
  kNone = 0,
  // seq_cst loads ignore the per-location SC floors, admitting stale
  // reads the SC total order forbids (an over-approximation: extra
  // behaviors appear in the seq_cst-only fragment).
  kScLoadIgnoresFloor,
  // Sleeping threads are never woken by conflicting operations, so the
  // sleep-set reduction prunes subtrees it has no sibling coverage for
  // (an under-approximation: DFS misses behaviors sampling can reach).
  kSleepSetNeverWakes,
};

// What the DFS branches on (see --explore).
enum class ExploreMode : std::uint8_t {
  // Branch on every scheduler choice point (plus reads-from picks):
  // CDSChecker-style enumeration with sleep-set reduction.
  kSchedule = 0,
  // Reads-from equivalence (Tunç et al.): non-seq_cst atomic loads never
  // branch the scheduler. They execute greedily at their earliest
  // placement and branch only on their reads-from assignment, where a
  // trailing "wait for the next same-location write" alternative stands in
  // for every later placement. Each completed execution is the
  // representative of one rf equivalence class; executions whose wait
  // choices are never satisfied are infeasible classes, pruned and counted
  // separately (ExplorationStats::rf_infeasible). Behavior sets, verdicts
  // and per-class counters are identical to kSchedule's; only the number
  // of explored executions shrinks.
  kRf,
};

[[nodiscard]] inline const char* to_string(ExploreMode m) {
  return m == ExploreMode::kRf ? "rf" : "schedule";
}

struct Config {
  // Hard cap on modeled threads per execution (including the test's root
  // thread).
  int max_threads = 32;

  // How many times per execution a single thread may choose to read a
  // message older than the newest eligible one. This is the operational
  // analogue of CDSChecker's memory-liveness fairness bound: it keeps
  // spin loops that keep re-reading stale values from making the DFS tree
  // infinite while preserving bounded-staleness behaviors.
  std::uint32_t stale_read_bound = 3;

  // Per-execution bound on visible operations; executions that exceed it
  // are counted as explored but infeasible (pruned).
  std::uint64_t max_steps = 20000;

  // Stop exploring after this many executions (0 = exhaustive).
  std::uint64_t max_executions = 0;

  // Keep at most this many violation records per exploration.
  std::uint32_t max_recorded_violations = 16;

  // Stop the whole exploration at the first violation (built-in or
  // spec-level) instead of continuing to enumerate.
  bool stop_on_first_violation = false;

  // Record a compact per-execution event trace (used in diagnostics).
  bool collect_trace = true;

  // Sleep-set partial-order reduction (sound; prunes redundant
  // interleavings). Disable only for ablation measurements.
  bool enable_sleep_sets = true;

  // Equivalence relation the DFS enumerates representatives of. Part of
  // the config fingerprint: trails, checkpoints and shard journals
  // recorded in one mode never resume or replay under the other. Under
  // strengthen_to_sc every load is seq_cst, so kRf degenerates to
  // kSchedule (no load is ever deferred).
  ExploreMode explore = ExploreMode::kSchedule;

  // The paper's Section 2 "Strengthen the Atomics" alternative: coerce
  // every atomic operation to seq_cst. Under this mode the relaxed
  // behaviors disappear (and classic linearizability applies), at the
  // modeled cost the paper's developers avoid paying.
  bool strengthen_to_sc = false;

  // ---- resource budgets & fail-safe degradation -------------------------
  // Exhaustive DFS under C/C++11 is unbounded in the worst case; budgets
  // turn "runs forever" into "returns an inconclusive verdict with
  // coverage numbers".

  // Wall-clock budget for the whole exploration (0 = unlimited). Checked
  // between executions and every few hundred steps inside one, so a
  // single long execution cannot overshoot by much.
  double time_budget_seconds = 0.0;

  // Memory budget in bytes (0 = unlimited) over the engine's per-execution
  // arena, location histories, and trace buffer. Exceeding it ends the
  // current execution and (like the time budget) degrades to sampling.
  std::size_t memory_budget_bytes = 0;

  // Exploration-level watchdog: if this many consecutive executions finish
  // without a single feasible (checkable) one — the DFS is grinding through
  // pruned/livelocked subtrees only — treat the budget as exhausted.
  // Disabled by default so unbudgeted exhaustive runs stay bit-identical;
  // the CLI arms it whenever a budget flag is passed.
  std::uint64_t watchdog_no_progress_execs = 0;

  // When a budget (time, memory, watchdog) is exhausted, fall back from
  // exhaustive DFS to seeded random-walk sampling instead of stopping
  // cold: up to this many sampled executions, still subject to the final
  // wall-clock deadline. 0 disables degradation.
  std::uint64_t sample_executions = 2048;

  // Fraction of the time budget reserved for the DFS phase when
  // degradation is enabled; the remainder funds the sampling phase.
  double dfs_budget_fraction = 0.8;

  // Seed for the sampling phase's RNG (and anything else the engine
  // randomizes). Echoed in ExplorationStats so degraded runs are
  // reproducible.
  std::uint64_t seed = 0x9e3779b97f4a7c15ull;

  // Cooperative preemption hook (work stealing): polled between DFS
  // executions. When it returns true the engine stops after the execution
  // it just tallied, marks the run preempted (stats.preempted), and
  // records the last explored execution's trail as the preempt frontier —
  // the unexplored remainder of the subtree is exactly the right-sibling
  // subtrees of that trail (see mc::split_remaining_frontier), so a
  // coordinator can hand the rest out as fresh shards. Null = never
  // preempt (the default; the hot path is one null check).
  std::function<bool()> stop_request;

  // ---- observability ----------------------------------------------------

  // Emit a one-line progress heartbeat to stderr at most every this many
  // seconds while explore() runs (0 = off, the default: the disabled hot
  // path is a single null-pointer branch). Parallel workers inherit the
  // interval, so `--jobs` runs beat per worker.
  double progress_interval_seconds = 0.0;

  // Label prefixed to heartbeat lines; falls back to test_name when empty
  // (the parallel harness stamps "name#test shard i/N" per shard).
  std::string progress_label;

  // ---- persistence & containment ----------------------------------------

  // When non-empty, the engine periodically writes its DFS frontier (plus
  // counters and RNG state) to this file via write-to-temp+rename, so a
  // killed exploration resumes from the last checkpoint instead of
  // restarting (see mc/checkpoint.h and Engine::set_resume).
  std::string checkpoint_path;

  // Checkpoint cadence: write every this many executions, in both the DFS
  // and sampling phases (a checkpoint is also forced whenever a budget
  // exhausts or the watchdog fires).
  std::uint64_t checkpoint_every_execs = 1000;

  // Identity fingerprint stamped into checkpoints and .trail repros, e.g.
  // "msqueue#2" (benchmark name '#' unit-test index). Resume and replay
  // reject files whose fingerprint does not match the current run.
  std::string test_name;
  std::uint32_t test_index = 0;

  // Signal-to-verdict containment: catch SIGSEGV/SIGBUS/SIGFPE/SIGABRT
  // raised while a modeled-thread fiber runs (i.e. inside the test body),
  // convert the crash into a Violation{kCrash} carrying the current trail,
  // and end the exploration with Verdict::kFalsified instead of letting
  // the signal kill the checker process. Disable only to debug the
  // containment layer itself with a native debugger.
  bool contain_crashes = true;

  // ---- self-validation hooks (src/fuzz, tools/cdsspec-fuzz) -------------

  // Skip the DFS phase entirely and draw `sample_executions` seeded
  // random-walk executions. The fuzzer's DFS-vs-sampling oracle runs the
  // same program both ways and requires every sampled behavior to appear
  // in the exhaustive set.
  bool sampling_only = false;

  // Test-only soundness sabotage; see UnsoundHook. Never set outside the
  // self-validation tests.
  UnsoundHook unsound_hook = UnsoundHook::kNone;
};

}  // namespace cds::mc

#endif  // CDS_MC_CONFIG_H
