// Exploration configuration.
#ifndef CDS_MC_CONFIG_H
#define CDS_MC_CONFIG_H

#include <cstdint>

namespace cds::mc {

struct Config {
  // Hard cap on modeled threads per execution (including the test's root
  // thread).
  int max_threads = 32;

  // How many times per execution a single thread may choose to read a
  // message older than the newest eligible one. This is the operational
  // analogue of CDSChecker's memory-liveness fairness bound: it keeps
  // spin loops that keep re-reading stale values from making the DFS tree
  // infinite while preserving bounded-staleness behaviors.
  std::uint32_t stale_read_bound = 3;

  // Per-execution bound on visible operations; executions that exceed it
  // are counted as explored but infeasible (pruned).
  std::uint64_t max_steps = 20000;

  // Stop exploring after this many executions (0 = exhaustive).
  std::uint64_t max_executions = 0;

  // Keep at most this many violation records per exploration.
  std::uint32_t max_recorded_violations = 16;

  // Stop the whole exploration at the first violation (built-in or
  // spec-level) instead of continuing to enumerate.
  bool stop_on_first_violation = false;

  // Record a compact per-execution event trace (used in diagnostics).
  bool collect_trace = true;

  // Sleep-set partial-order reduction (sound; prunes redundant
  // interleavings). Disable only for ablation measurements.
  bool enable_sleep_sets = true;

  // The paper's Section 2 "Strengthen the Atomics" alternative: coerce
  // every atomic operation to seq_cst. Under this mode the relaxed
  // behaviors disappear (and classic linearizability applies), at the
  // modeled cost the paper's developers avoid paying.
  bool strengthen_to_sc = false;
};

}  // namespace cds::mc

#endif  // CDS_MC_CONFIG_H
